/**
 * @file
 * Tests for the trace-dump sink, the ISA attribute tables, and the
 * remaining runtime::Cpu operations not exercised elsewhere.
 */

#include <gtest/gtest.h>

#include "isa/op.hh"
#include "profile/trace_dump.hh"
#include "runtime/cpu.hh"

namespace mmxdsp {
namespace {

using profile::TraceDump;
using runtime::Cpu;
using runtime::F64;
using runtime::M64;
using runtime::R32;

// ---------------- ISA table completeness ----------------

TEST(IsaTable, EveryOpHasSaneAttributes)
{
    for (size_t i = 0; i < isa::kNumOps; ++i) {
        isa::Op op = static_cast<isa::Op>(i);
        const isa::OpInfo &info = isa::opInfo(op);
        EXPECT_NE(info.name, nullptr);
        EXPECT_GT(std::string(info.name).size(), 1u);
        EXPECT_GE(info.latency, 1) << info.name;
        EXPECT_GE(info.blocking, 1) << info.name;
        EXPECT_LE(info.blocking, info.latency) << info.name;
        EXPECT_GE(info.uops, 1) << info.name;
    }
}

TEST(IsaTable, MmxClassificationIsExhaustive)
{
    // Exactly the 47 MMX mnemonics (57 instructions counting operand
    // variants) are classified as MMX.
    int mmx_count = 0;
    for (size_t i = 0; i < isa::kNumOps; ++i) {
        isa::Op op = static_cast<isa::Op>(i);
        if (isa::isMmx(op))
            ++mmx_count;
    }
    EXPECT_EQ(mmx_count, 47);
    // Spot checks on the Figure 1(a) buckets.
    EXPECT_EQ(isa::opInfo(isa::Op::Packsswb).mmx,
              isa::MmxCategory::PackUnpack);
    EXPECT_EQ(isa::opInfo(isa::Op::Punpckhdq).mmx,
              isa::MmxCategory::PackUnpack);
    EXPECT_EQ(isa::opInfo(isa::Op::Pmaddwd).mmx, isa::MmxCategory::Arith);
    EXPECT_EQ(isa::opInfo(isa::Op::Pand).mmx, isa::MmxCategory::Arith);
    EXPECT_EQ(isa::opInfo(isa::Op::Movq).mmx, isa::MmxCategory::Mov);
    EXPECT_EQ(isa::opInfo(isa::Op::Emms).mmx, isa::MmxCategory::Emms);
    EXPECT_EQ(isa::opInfo(isa::Op::Add).mmx, isa::MmxCategory::None);
}

TEST(IsaTable, PaperQuotedLatencies)
{
    // The latencies the paper itself quotes.
    EXPECT_EQ(isa::opInfo(isa::Op::Imul).latency, 10); // section 4.1
    EXPECT_EQ(isa::opInfo(isa::Op::Pmaddwd).latency, 3);
    EXPECT_EQ(isa::opInfo(isa::Op::Pmaddwd).blocking, 1) << "pipelined";
    EXPECT_EQ(isa::opInfo(isa::Op::Emms).latency, 50); // section 3.1
}

TEST(IsaTable, ControlAndX87Predicates)
{
    EXPECT_TRUE(isa::isControl(isa::Op::Jcc));
    EXPECT_TRUE(isa::isControl(isa::Op::Call));
    EXPECT_TRUE(isa::isControl(isa::Op::Ret));
    EXPECT_FALSE(isa::isControl(isa::Op::Add));
    EXPECT_TRUE(isa::isX87(isa::Op::Fadd));
    EXPECT_TRUE(isa::isX87(isa::Op::Fxch));
    EXPECT_FALSE(isa::isX87(isa::Op::Movq));
}

// ---------------- trace dump ----------------

TEST(TraceDump, FormatsMnemonicsAndOperands)
{
    Cpu cpu;
    TraceDump dump;
    cpu.attachSink(&dump);
    alignas(8) int16_t d[4] = {1, 2, 3, 4};
    M64 a = cpu.movqLoad(d);
    M64 b = cpu.paddw(a, a);
    cpu.movqStore(d, b);
    cpu.attachSink(nullptr);

    ASSERT_EQ(dump.lines().size(), 3u);
    EXPECT_NE(dump.lines()[0].find("movq"), std::string::npos);
    EXPECT_NE(dump.lines()[0].find("load"), std::string::npos);
    EXPECT_NE(dump.lines()[0].find("mm"), std::string::npos);
    EXPECT_NE(dump.lines()[1].find("paddw"), std::string::npos);
    EXPECT_NE(dump.lines()[2].find("store"), std::string::npos);
}

TEST(TraceDump, IndentsFunctionDepth)
{
    Cpu cpu;
    TraceDump dump;
    cpu.attachSink(&dump);
    {
        runtime::CallGuard g(cpu, "leaf", 0, 0);
        cpu.imm32(1);
    }
    cpu.attachSink(nullptr);

    // Expect the "--> leaf" marker and an indented body instruction.
    bool saw_marker = false;
    bool saw_indented = false;
    for (const auto &line : dump.lines()) {
        if (line.find("--> leaf") != std::string::npos)
            saw_marker = true;
        if (line.rfind("  mov", 0) == 0)
            saw_indented = true;
    }
    EXPECT_TRUE(saw_marker);
    EXPECT_TRUE(saw_indented);
}

TEST(TraceDump, RespectsLineCapButCountsEverything)
{
    Cpu cpu;
    TraceDump dump(10);
    cpu.attachSink(&dump);
    for (int i = 0; i < 100; ++i)
        cpu.imm32(i);
    cpu.attachSink(nullptr);
    EXPECT_EQ(dump.lines().size(), 10u);
    EXPECT_EQ(dump.totalEvents(), 100u);
    dump.clear();
    EXPECT_TRUE(dump.lines().empty());
    EXPECT_EQ(dump.totalEvents(), 0u);
}

TEST(TraceDump, BranchOutcomeAnnotated)
{
    Cpu cpu;
    TraceDump dump;
    cpu.attachSink(&dump);
    cpu.jcc(true);
    cpu.jcc(false);
    cpu.attachSink(nullptr);
    EXPECT_NE(dump.lines()[0].find("; taken"), std::string::npos);
    EXPECT_NE(dump.lines()[1].find("; not taken"), std::string::npos);
}

// ---------------- remaining Cpu operations ----------------

TEST(CpuCoverage, LogicalAndShiftValues)
{
    Cpu cpu;
    R32 a = cpu.imm32(0x0ff0);
    R32 b = cpu.imm32(0x00ff);
    EXPECT_EQ(cpu.or_(cpu.mov(a), b).v, 0x0fff);
    EXPECT_EQ(cpu.andImm(cpu.mov(a), 0x00f0).v, 0x00f0);
    EXPECT_EQ(cpu.not_(cpu.imm32(0)).v, -1);
    EXPECT_EQ(cpu.shl(cpu.imm32(3), 4).v, 48);
}

TEST(CpuCoverage, UnsignedLoadsAndStores)
{
    Cpu cpu;
    uint16_t u16 = 0xbeef;
    uint32_t u32 = 0xdeadbeef;
    EXPECT_EQ(cpu.load16u(&u16).v, 0xbeef);
    EXPECT_EQ(static_cast<uint32_t>(cpu.load32u(&u32).v), 0xdeadbeefu);
    cpu.store16u(&u16, cpu.imm32(0x1234));
    EXPECT_EQ(u16, 0x1234);
    cpu.store32u(&u32, cpu.imm32(-1));
    EXPECT_EQ(u32, 0xffffffffu);
}

TEST(CpuCoverage, XchgMemSwapsAtomically)
{
    Cpu cpu;
    int32_t lock = 7;
    R32 old = cpu.xchgMem(&lock, cpu.imm32(1));
    EXPECT_EQ(old.v, 7);
    EXPECT_EQ(lock, 1);
}

TEST(CpuCoverage, FloatingHelpers)
{
    Cpu cpu;
    F64 x = cpu.fimm(-2.25);
    EXPECT_DOUBLE_EQ(cpu.fabs_(cpu.fmov(x)).v, 2.25);
    EXPECT_DOUBLE_EQ(cpu.fchs(cpu.fmov(x)).v, 2.25);
    EXPECT_DOUBLE_EQ(cpu.fsqrt_(cpu.fimm(9.0)).v, 3.0);
    int16_t out = 0;
    cpu.fistp16(&out, cpu.fimm(-3.2));
    EXPECT_EQ(out, -3);
    int32_t out32 = 0;
    cpu.fistp32(&out32, cpu.fimm(2.5));
    EXPECT_EQ(out32, 2); // round half to even
    // fcmpJcc just needs to emit a plausible sequence.
    cpu.fcmpJcc(cpu.fimm(1.0), cpu.fimm(2.0), true);
}

TEST(CpuCoverage, MmxMovdPathsAndStores)
{
    Cpu cpu;
    R32 v = cpu.imm32(-123456);
    M64 m = cpu.movdFromR32(v);
    EXPECT_EQ(m.v.sd(0), -123456);
    EXPECT_EQ(cpu.movdToR32(m).v, -123456);

    alignas(8) int32_t mem[2] = {0, 0};
    cpu.movdStore(mem, m);
    EXPECT_EQ(mem[0], -123456);
    EXPECT_EQ(mem[1], 0);
    M64 back = cpu.movdLoad(mem);
    EXPECT_EQ(back.v.sd(0), -123456);
    EXPECT_EQ(back.v.ud(1), 0u) << "movd zeroes the upper half";
}

TEST(CpuCoverage, MmxShiftWrappersMatchSemantics)
{
    Cpu cpu;
    M64 a = cpu.movdFromR32(cpu.imm32(0x00010002));
    EXPECT_EQ(cpu.psllq(cpu.movq(a), 32).v.ud(1), 0x00010002u);
    M64 w = cpu.paddw(cpu.mmxZero(),
                      cpu.movdFromR32(cpu.imm32(0x7fff0001)));
    EXPECT_EQ(cpu.psraw(cpu.movq(w), 1).v.sw(1), 0x3fff);
    EXPECT_EQ(cpu.psrlw(cpu.movq(w), 1).v.uw(0), 0u);
    EXPECT_EQ(cpu.pslld(cpu.movq(w), 4).v.ud(0), 0xfff00010u);
    EXPECT_EQ(cpu.psrld(w, 16).v.ud(0), 0x7fffu);
}

TEST(CpuCoverage, PushArgStoresToModelledStack)
{
    Cpu cpu;
    // pushArg must write the value into the modelled stack slot (the
    // event's address points there); a balanced epilogue follows.
    cpu.pushArg(cpu.imm32(42));
    cpu.call("callee");
    cpu.prologue(0);
    cpu.epilogue(0, 1);
    SUCCEED();
}

} // namespace
} // namespace mmxdsp
