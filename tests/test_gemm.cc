/**
 * @file
 * Differential tests for the blocked GEMM kernel family: all four
 * variants (naive scalar, cache-blocked scalar, naive MMX,
 * register+cache-blocked MMX) must be bit-identical to the wraparound
 * reference — on the workload data, on randomized full-range Q15
 * matrices, and on edge dimensions that are not multiples of 4 (the
 * pmaddwd quad) or of the block size.
 */

#include <gtest/gtest.h>

#include "kernels/gemm.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"

namespace mmxdsp::kernels {
namespace {

using profile::ProfileResult;
using profile::VProf;
using runtime::Cpu;

/** Run all four variants and expect exact equality with reference(). */
void
expectAllVariantsExact(GemmBenchmark &gemm, const char *what)
{
    Cpu cpu;
    gemm.runC(cpu);
    gemm.runCBlocked(cpu);
    gemm.runMmx(cpu);
    gemm.runMmxBlocked(cpu);
    const std::vector<int16_t> ref = gemm.reference();
    ASSERT_EQ(gemm.outC().size(), ref.size()) << what;
    EXPECT_EQ(gemm.outC(), ref) << what << ": naive scalar";
    EXPECT_EQ(gemm.outCBlocked(), ref) << what << ": blocked scalar";
    EXPECT_EQ(gemm.outMmx(), ref) << what << ": naive mmx";
    EXPECT_EQ(gemm.outMmxBlocked(), ref) << what << ": blocked mmx";
}

TEST(GemmKernel, AllVariantsMatchReferenceOnWorkloadData)
{
    GemmBenchmark gemm;
    gemm.setup(48, 16, 7);
    expectAllVariantsExact(gemm, "48x48 block 16");
}

TEST(GemmKernel, RandomizedFullRangeQ15IsExactOnEveryVariant)
{
    // Full-range Q15 inputs force wraparound in the 32-bit
    // accumulators; the variants stay bit-identical because addition
    // mod 2^32 is order-independent. Edge shapes: dims that are not
    // multiples of 4 (pmaddwd tail), not multiples of the block
    // (partial panels), blocks of 1, and blocks larger than the
    // matrix.
    const struct
    {
        int dim;
        int block;
    } shapes[] = {
        {1, 1},   {3, 2},   {7, 4},  {8, 3},  {17, 8},
        {23, 10}, {33, 16}, {32, 5}, {19, 64},
    };
    Rng rng(0x9e3779b97f4a7c15ull);
    for (const auto &s : shapes) {
        GemmBenchmark gemm;
        gemm.setup(s.dim, s.block, 11);
        const size_t n2 = static_cast<size_t>(s.dim) * s.dim;
        std::vector<int16_t> a(n2), b(n2);
        for (auto &x : a)
            x = static_cast<int16_t>(rng.nextInRange(-32768, 32767));
        for (auto &x : b)
            x = static_cast<int16_t>(rng.nextInRange(-32768, 32767));
        gemm.setInputs(std::move(a), std::move(b));
        const std::string what = "dim " + std::to_string(s.dim) + " block "
                                 + std::to_string(s.block);
        expectAllVariantsExact(gemm, what.c_str());
    }
}

TEST(GemmKernel, BlockSizeDoesNotChangeTheResult)
{
    // One matrix, every blocking: identical bits.
    std::vector<int16_t> golden;
    for (int block : {4, 8, 12, 20, 31}) {
        GemmBenchmark gemm;
        gemm.setup(31, block, 5);
        Cpu cpu;
        gemm.runMmxBlocked(cpu);
        if (golden.empty())
            golden = gemm.outMmxBlocked();
        else
            EXPECT_EQ(gemm.outMmxBlocked(), golden) << "block " << block;
    }
}

TEST(GemmKernel, BlockedMmxExecutesFarFewerInstructionsThanScalar)
{
    GemmBenchmark gemm;
    gemm.setup(40, 16, 3);
    Cpu cpu;

    VProf scalar;
    cpu.attachSink(&scalar);
    gemm.runC(cpu);
    cpu.attachSink(nullptr);

    VProf mmx;
    cpu.attachSink(&mmx);
    gemm.runMmxBlocked(cpu);
    cpu.attachSink(nullptr);

    const ProfileResult s = scalar.result();
    const ProfileResult m = mmx.result();
    // pmaddwd retires 4 MACs per instruction and the tile amortizes
    // loads; the dynamic stream must shrink by well over 2x.
    EXPECT_GT(s.dynamicInstructions, 2 * m.dynamicInstructions);
    // And the MMX variant must actually be MMX.
    EXPECT_GT(m.mmxInstructions, 0u);
}

TEST(GemmKernel, MacCountIsCubic)
{
    GemmBenchmark gemm;
    gemm.setup(10, 4, 1);
    EXPECT_EQ(gemm.macCount(), 1000u);
}

} // namespace
} // namespace mmxdsp::kernels
