/**
 * @file
 * Golden tests for the uops.info-style self-characterization layer
 * (sim/characterize.hh): the P5 rows must match the paper's published
 * pairing/latency/blocking rules bit-exactly, a handful of
 * paper-derived spot values are pinned literally so a table edit that
 * happens to satisfy the closed forms still trips a golden, and the
 * P6P port model must diverge from the P6 retire-only model exactly
 * where dual-ALU contention predicts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "isa/op.hh"
#include "sim/characterize.hh"
#include "sim/timing_model.hh"
#include "sim/uop.hh"

namespace mmxdsp::sim {
namespace {

using isa::MemMode;
using isa::Op;

std::vector<CharacterizeRow>
rowsFor(ModelKind kind)
{
    return characterize(MachineConfig{kind, TimerConfig{}});
}

/** Index measured rows by (op, mem) for literal spot checks. */
std::map<std::pair<Op, MemMode>, CharacterizeRow>
byForm(const std::vector<CharacterizeRow> &rows)
{
    std::map<std::pair<Op, MemMode>, CharacterizeRow> m;
    for (const CharacterizeRow &r : rows)
        m[{r.op, r.mem}] = r;
    return m;
}

TEST(Characterize, P5RowsMatchTheClosedFormsBitExactly)
{
    const auto rows = rowsFor(ModelKind::P5);
    ASSERT_EQ(rows.size(), characterizeForms().size());
    for (const CharacterizeRow &r : rows) {
        const char *name = isa::opInfo(r.op).name;
        EXPECT_EQ(r.latency, expectedP5Latency(r.op, r.mem))
            << name << " mem " << static_cast<int>(r.mem);
        EXPECT_EQ(r.throughput, expectedP5Throughput(r.op, r.mem))
            << name << " mem " << static_cast<int>(r.mem);
    }
}

TEST(Characterize, P5SpotValuesMatchThePaperTables)
{
    // Literal paper-derived goldens, independent of the closed forms:
    // if someone edits isa::opTable() *and* the expectations together,
    // these still pin the published machine.
    const auto rows = byForm(rowsFor(ModelKind::P5));
    const struct
    {
        Op op;
        MemMode mem;
        double latency;
        double throughput;
    } golden[] = {
        {Op::Mov, MemMode::None, 1.0, 0.5},   // freely pairing UV
        {Op::Mov, MemMode::Load, 1.0, 1.0},   // mem ref keeps V empty
        {Op::Mov, MemMode::Store, 1.0, 1.0},
        {Op::Shl, MemMode::None, 1.0, 1.0},   // PU: U-pipe only
        {Op::Imul, MemMode::None, 10.0, 10.0}, // NP, blocking 10
        {Op::Fadd, MemMode::None, 3.0, 1.0},  // FP latency 3
        {Op::Fmul, MemMode::None, 3.0, 2.0},  // multiplier blocks 2
        {Op::Pmullw, MemMode::None, 3.0, 1.0}, // MMX multiplier hazard
        {Op::Paddw, MemMode::None, 1.0, 0.5}, // MMX ALU pairs freely
        {Op::Emms, MemMode::None, 50.0, 50.0}, // microcoded, NP
    };
    for (const auto &g : golden) {
        auto it = rows.find({g.op, g.mem});
        ASSERT_NE(it, rows.end()) << isa::opInfo(g.op).name;
        EXPECT_EQ(it->second.latency, g.latency) << isa::opInfo(g.op).name;
        EXPECT_EQ(it->second.throughput, g.throughput)
            << isa::opInfo(g.op).name;
    }
}

TEST(Characterize, P6SpotValuesMatchTheDecodeModel)
{
    const auto rows = byForm(rowsFor(ModelKind::P6));
    // Pipelined multiplier: chain latency 4, independent streams retire
    // 3 per cycle (1-uop imul issues from any decoder on the P6).
    const CharacterizeRow &imul = rows.at({Op::Imul, MemMode::None});
    EXPECT_EQ(imul.latency, 4.0);
    EXPECT_NEAR(imul.throughput, 1.0 / 3.0, 0.01);
    // Single-uop ALU streams sustain the full 3-wide issue.
    EXPECT_NEAR(rows.at({Op::Add, MemMode::None}).throughput, 1.0 / 3.0,
                0.01);
    // Microcoded emms streams alone: ceil(11 uops / 3 wide) = 4.
    EXPECT_EQ(rows.at({Op::Emms, MemMode::None}).throughput, 4.0);
}

TEST(Characterize, P6PDivergesFromP6ExactlyOnDualAluSaturation)
{
    // The acceptance gate of the port model: any independent stream of
    // single-uop ALU instructions saturates both ALU ports, so the P6P
    // must be strictly slower than the P6 there (2/cycle vs 3/cycle) —
    // and on port-serialized streams the P6P sustains its port rate.
    const auto p6 = byForm(rowsFor(ModelKind::P6));
    const auto p6p = byForm(rowsFor(ModelKind::P6P));
    ASSERT_EQ(p6.size(), p6p.size());

    size_t divergent = 0;
    for (const auto &[form, row6] : p6) {
        const auto &info = isa::opInfo(form.first);
        const bool dualAlu = form.second == MemMode::None
                             && info.uops == 1
                             && (info.unit == isa::Unit::IntAlu
                                 || info.unit == isa::Unit::MmxAlu);
        if (!dualAlu)
            continue;
        const CharacterizeRow &rowP = p6p.at(form);
        EXPECT_GT(rowP.throughput, row6.throughput)
            << isa::opInfo(form.first).name;
        // The scheduler window absorbs one cycle at the measurement
        // boundary, so the measured rate sits 1/kCharacterizeMeasure
        // under the steady-state 0.5 — hence NEAR, not EQ.
        EXPECT_NEAR(rowP.throughput, 0.5, 0.01)
            << isa::opInfo(form.first).name;
        ++divergent;
    }
    EXPECT_GT(divergent, 0u);

    // Port-serialized spot values: one per cycle on the single p0
    // (multiplier/FP) and p1 (MMX shift) ports, one load per cycle on
    // p2, and the deeper store path on p3/p4.
    EXPECT_NEAR(p6p.at({Op::Fmul, MemMode::None}).throughput, 1.0, 0.01);
    EXPECT_NEAR(p6p.at({Op::Pmullw, MemMode::None}).throughput, 1.0, 0.01);
    EXPECT_NEAR(p6p.at({Op::Psllw, MemMode::None}).throughput, 1.0, 0.01);
    EXPECT_EQ(p6p.at({Op::Mov, MemMode::Store}).throughput, 1.0);
    EXPECT_NEAR(p6p.at({Op::Mov, MemMode::Load}).throughput, 1.0, 0.05);
    // Latencies are port-independent (dispatch never extends results):
    // the imul chain matches the P6.
    EXPECT_EQ(p6p.at({Op::Imul, MemMode::None}).latency,
              p6.at({Op::Imul, MemMode::None}).latency);
}

TEST(Characterize, GemmRooflineOpsAgreeWithTheDescriptorTable)
{
    // The GEMM roofline analysis converts cycles into cycles/MAC using
    // the pmaddwd (+paddd accumulate, +packssdw store) rates; if the
    // measured machine ever drifted from the UopDesc contract those
    // tables would silently lie. Tie the measured rows to the
    // descriptor fields on all three models, plus literal spot goldens.
    const auto p5 = byForm(rowsFor(ModelKind::P5));
    const auto p6 = byForm(rowsFor(ModelKind::P6));
    const auto p6p = byForm(rowsFor(ModelKind::P6P));

    for (const Op op : {Op::Pmaddwd, Op::Paddd, Op::Packssdw}) {
        const char *name = isa::opInfo(op).name;
        isa::InstrEvent e;
        e.op = op;
        e.mem = MemMode::None;
        const UopDesc &desc = uopDesc(e);

        // Dependency-chain latencies must equal the per-model
        // descriptor latencies (all three ops are 1-blocking, so the
        // P5 chain sustains exactly latP5).
        EXPECT_EQ(p5.at({op, MemMode::None}).latency, desc.latP5) << name;
        EXPECT_EQ(p6.at({op, MemMode::None}).latency, desc.latP6) << name;
        EXPECT_EQ(p6p.at({op, MemMode::None}).latency, desc.latP6) << name;

        // P5 issue rate follows the structural-hazard flags: a
        // single-instance unit (multiplier/shifter) serializes at 1
        // per cycle, a freely-pairing MMX ALU op dual-issues.
        const bool hazard = desc.flags & (kDescMmxMul | kDescMmxShift);
        EXPECT_EQ(p5.at({op, MemMode::None}).throughput, hazard ? 1.0 : 0.5)
            << name;

        // P6 has no ports: every 1-uop op retires 3 per cycle.
        ASSERT_EQ(desc.uops, 1) << name;
        EXPECT_NEAR(p6.at({op, MemMode::None}).throughput, 1.0 / 3.0, 0.01)
            << name;

        // P6P dispatch follows the descriptor's port class: a
        // single-port op sustains 1 per cycle, an either-port ALU op
        // saturates both ports at 2 per cycle.
        const double port_rate = desc.port == PortClass::Either ? 0.5 : 1.0;
        EXPECT_NEAR(p6p.at({op, MemMode::None}).throughput, port_rate, 0.01)
            << name;
    }

    // Literal spot goldens (independent of the descriptor table): the
    // rates the EXPERIMENTS.md roofline discussion quotes.
    EXPECT_EQ(p5.at({Op::Pmaddwd, MemMode::None}).latency, 3.0);
    EXPECT_EQ(p5.at({Op::Pmaddwd, MemMode::None}).throughput, 1.0);
    EXPECT_EQ(p5.at({Op::Paddd, MemMode::None}).throughput, 0.5);
    EXPECT_EQ(p6.at({Op::Pmaddwd, MemMode::None}).latency, 3.0);
    EXPECT_NEAR(p6p.at({Op::Pmaddwd, MemMode::None}).throughput, 1.0, 0.01);
    EXPECT_NEAR(p6p.at({Op::Packssdw, MemMode::None}).throughput, 1.0,
                0.01);
}

} // namespace
} // namespace mmxdsp::sim
