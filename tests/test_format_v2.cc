/**
 * @file
 * Tests for trace format v2 (the mmap'd materialized layout): property
 * round-trips on randomized streams, determinism, corruption and
 * truncation rejection, the v1 -> v2 converter, and the acceptance
 * gate — every benchmark pair's v2 mmap load replays bit-identical to
 * the v1 varint path on both machine models.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "isa/event.hh"
#include "isa/op.hh"
#include "profile/vprof.hh"
#include "sim/timing_model.hh"
#include "sim/trace_sink.hh"
#include "support/io.hh"
#include "support/rng.hh"
#include "trace/format_v2.hh"
#include "trace/materialize.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace mmxdsp {
namespace {

namespace fs = std::filesystem;

struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const char *name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

harness::SuiteConfig
tinyConfig()
{
    harness::SuiteConfig config;
    config.scaleDown(16);
    return config;
}

/** A random but encodable instruction event (same shape test_trace.cc
 *  exercises the v1 codec with). */
isa::InstrEvent
randomEvent(Rng &rng)
{
    isa::InstrEvent e;
    e.op = static_cast<isa::Op>(rng.nextBelow(isa::kNumOps));
    e.mem = static_cast<isa::MemMode>(rng.nextBelow(3));
    if (e.mem != isa::MemMode::None) {
        e.addr = rng.next() >> rng.nextBelow(40);
        e.size = static_cast<uint8_t>(1u << rng.nextBelow(4));
    }
    e.site = rng.nextBelow(2000);
    auto tag = [&]() -> isa::RegTag {
        if (rng.nextBelow(4) == 0)
            return isa::kNoReg;
        return isa::makeTag(static_cast<isa::RegClass>(rng.nextBelow(3)),
                            static_cast<uint8_t>(rng.nextBelow(8)));
    };
    e.src0 = tag();
    e.src1 = tag();
    e.dst = tag();
    e.taken = rng.nextBelow(2) != 0;
    return e;
}

/** Serialized v1 image of a random stream with function markers. */
std::vector<uint8_t>
randomV1Image(uint64_t seed, int target_events)
{
    Rng rng(seed);
    trace::TraceWriter writer("rand", "c", seed);
    int depth = 0;
    for (int i = 0; i < target_events; ++i) {
        const uint32_t roll = rng.nextBelow(20);
        if (roll == 0) {
            const char *names[] = {"alpha", "beta", "gamma", "delta"};
            writer.onEnterFunction(names[rng.nextBelow(4)]);
            ++depth;
        } else if (roll == 1 && depth > 0) {
            writer.onLeaveFunction();
            --depth;
        } else {
            writer.onInstr(randomEvent(rng));
        }
    }
    writer.finish();
    return writer.serialize();
}

trace::MaterializedTrace
buildFromV1(const std::vector<uint8_t> &v1)
{
    trace::TraceReader reader;
    EXPECT_TRUE(reader.parse(std::vector<uint8_t>(v1)));
    trace::MaterializedTrace mat;
    EXPECT_TRUE(mat.build(reader));
    return mat;
}

struct RecordingSink final : sim::TraceSink
{
    std::vector<isa::InstrEvent> events;
    std::vector<std::string> enters;
    int leaves = 0;

    void onInstr(const isa::InstrEvent &event) override
    {
        events.push_back(event);
    }
    void onEnterFunction(const char *name) override
    {
        enters.emplace_back(name);
    }
    void onLeaveFunction() override { ++leaves; }
};

bool
sameEvent(const isa::InstrEvent &a, const isa::InstrEvent &b)
{
    return a.op == b.op && a.mem == b.mem && a.addr == b.addr
           && a.size == b.size && a.site == b.site && a.src0 == b.src0
           && a.src1 == b.src1 && a.dst == b.dst && a.taken == b.taken;
}

void
expectSameProfile(const profile::ProfileResult &a,
                  const profile::ProfileResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynamicInstructions, b.dynamicInstructions);
    EXPECT_EQ(a.staticInstructions, b.staticInstructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.memoryReferences, b.memoryReferences);
    EXPECT_EQ(a.mmxInstructions, b.mmxInstructions);
    EXPECT_EQ(a.mmxByCategory, b.mmxByCategory);
    EXPECT_EQ(a.functionCalls, b.functionCalls);
    EXPECT_EQ(a.callRetCycles, b.callRetCycles);
    EXPECT_EQ(a.callOverheadCycles, b.callOverheadCycles);
    EXPECT_EQ(a.opCounts, b.opCounts);
    EXPECT_EQ(a.timer.pairs, b.timer.pairs);
    EXPECT_EQ(a.timer.uopsIssued, b.timer.uopsIssued);
    EXPECT_EQ(a.timer.retireStallCycles, b.timer.retireStallCycles);
    EXPECT_EQ(a.timer.memPenaltyCycles, b.timer.memPenaltyCycles);
    EXPECT_EQ(a.timer.mispredictCycles, b.timer.mispredictCycles);
    EXPECT_EQ(a.timer.dependStallCycles, b.timer.dependStallCycles);
    EXPECT_EQ(a.timer.blockingExtraCycles, b.timer.blockingExtraCycles);
    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.btb.branches, b.btb.branches);
    EXPECT_EQ(a.btb.mispredicts, b.btb.mispredicts);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        ASSERT_NE(it, b.functions.end()) << name;
        EXPECT_EQ(st.calls, it->second.calls) << name;
        EXPECT_EQ(st.instructions, it->second.instructions) << name;
        EXPECT_EQ(st.cycles, it->second.cycles) << name;
    }
}

// ---------------- image detection ----------------

TEST(FormatV2, DetectsImageVersions)
{
    const std::vector<uint8_t> v1 = randomV1Image(1, 100);
    EXPECT_TRUE(trace::isV1Image(v1.data(), v1.size()));
    EXPECT_FALSE(trace::isV2Image(v1.data(), v1.size()));

    const std::vector<uint8_t> v2 = buildFromV1(v1).serializeV2();
    EXPECT_TRUE(trace::isV2Image(v2.data(), v2.size()));
    EXPECT_FALSE(trace::isV1Image(v2.data(), v2.size()));

    EXPECT_FALSE(trace::isV2Image(v2.data(), 3)); // too short
}

// ---------------- property round-trip ----------------

TEST(FormatV2, RandomStreamsRoundTripBitIdentical)
{
    // For a spread of random streams: v1 -> materialize -> v2 ->
    // in-memory load must reproduce the identical event stream, the
    // identical metadata, and identical profiles on both machines.
    for (uint64_t seed : {1u, 17u, 99u, 12345u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng sizeRng(seed);
        const int n = 500 + static_cast<int>(sizeRng.nextBelow(3000));
        const std::vector<uint8_t> v1 = randomV1Image(seed, n);
        trace::MaterializedTrace built = buildFromV1(v1);

        trace::MaterializedTrace loaded;
        ASSERT_TRUE(loaded.loadV2Image(built.serializeV2()));

        EXPECT_EQ(loaded.benchmark(), built.benchmark());
        EXPECT_EQ(loaded.version(), built.version());
        EXPECT_EQ(loaded.configHash(), built.configHash());
        EXPECT_EQ(loaded.instrCount(), built.instrCount());
        EXPECT_EQ(loaded.siteTableSize(), built.siteTableSize());
        EXPECT_EQ(loaded.functionNames(), built.functionNames());

        RecordingSink a, b;
        ASSERT_TRUE(built.replayTo(a));
        ASSERT_TRUE(loaded.replayTo(b));
        ASSERT_EQ(a.events.size(), b.events.size());
        for (size_t i = 0; i < a.events.size(); ++i)
            ASSERT_TRUE(sameEvent(a.events[i], b.events[i])) << i;
        EXPECT_EQ(a.enters, b.enters);
        EXPECT_EQ(a.leaves, b.leaves);

        for (const sim::ModelKind model :
             {sim::ModelKind::P5, sim::ModelKind::P6,
              sim::ModelKind::P6P}) {
            const sim::MachineConfig machine{model, sim::TimerConfig{}};
            expectSameProfile(loaded.replayProfile(machine),
                              built.replayProfile(machine),
                              std::string("model ")
                                  + sim::modelName(model));
        }
    }
}

TEST(FormatV2, SerializationIsDeterministic)
{
    const std::vector<uint8_t> v1 = randomV1Image(7, 1200);
    trace::MaterializedTrace mat = buildFromV1(v1);
    EXPECT_EQ(mat.serializeV2(), mat.serializeV2());

    // A load-then-reserialize is also byte-stable (views serialize
    // exactly like owned buffers).
    trace::MaterializedTrace loaded;
    ASSERT_TRUE(loaded.loadV2Image(mat.serializeV2()));
    EXPECT_EQ(loaded.serializeV2(), mat.serializeV2());
}

TEST(FormatV2, ConverterMatchesBuildPath)
{
    const std::vector<uint8_t> v1 = randomV1Image(21, 900);
    std::vector<uint8_t> v2;
    ASSERT_TRUE(trace::convertV1ImageToV2(v1, v2));
    EXPECT_EQ(v2, buildFromV1(v1).serializeV2());

    std::vector<uint8_t> garbage(64, 0xab);
    EXPECT_FALSE(trace::convertV1ImageToV2(garbage, v2));
}

// ---------------- mmap file load ----------------

TEST(FormatV2, FileLoadAliasesMapping)
{
    ScratchDir scratch("mmxdsp_v2_file_test");
    const std::vector<uint8_t> v1 = randomV1Image(3, 2000);
    trace::MaterializedTrace built = buildFromV1(v1);
    const std::string path = (scratch.path / "t.mxt2").string();
    ASSERT_TRUE(writeFileAtomic(path, built.serializeV2()));

    trace::MaterializedTrace loaded;
    ASSERT_TRUE(loaded.loadV2File(path));
    EXPECT_TRUE(loaded.valid());
    EXPECT_EQ(loaded.instrCount(), built.instrCount());
    expectSameProfile(loaded.replayProfile(), built.replayProfile(),
                      "file load");

    // POSIX keeps the mapping alive after an unlink: a trace served
    // to a query must survive its own file being evicted.
    fs::remove(path);
    expectSameProfile(loaded.replayProfile(), built.replayProfile(),
                      "after unlink");

    trace::MaterializedTrace missing;
    EXPECT_FALSE(missing.loadV2File((scratch.path / "nope").string()));
}

// ---------------- corruption handling ----------------

TEST(FormatV2, RejectsTruncation)
{
    const std::vector<uint8_t> image =
        buildFromV1(randomV1Image(5, 600)).serializeV2();
    // Every strict prefix must be refused: the final section runs to
    // the end of the image, so any truncation breaks its bounds.
    for (size_t len : {0ul, 3ul, 16ul, 63ul, 64ul, 200ul,
                       image.size() / 2, image.size() - 1}) {
        std::vector<uint8_t> bad(image.begin(),
                                 image.begin()
                                     + static_cast<ptrdiff_t>(len));
        trace::MaterializedTrace mat;
        EXPECT_FALSE(mat.loadV2Image(std::move(bad))) << len;
    }
}

TEST(FormatV2, RejectsHeaderAndSectionCorruption)
{
    const std::vector<uint8_t> image =
        buildFromV1(randomV1Image(5, 600)).serializeV2();
    { // magic
        std::vector<uint8_t> bad = image;
        bad[0] ^= 0xff;
        trace::MaterializedTrace mat;
        EXPECT_FALSE(mat.loadV2Image(std::move(bad)));
    }
    { // version
        std::vector<uint8_t> bad = image;
        bad[4] ^= 0x01;
        trace::MaterializedTrace mat;
        EXPECT_FALSE(mat.loadV2Image(std::move(bad)));
    }
    { // section table (offset field of the first section)
        std::vector<uint8_t> bad = image;
        bad[sizeof(trace::V2Header) + 8] ^= 0x01;
        trace::MaterializedTrace mat;
        EXPECT_FALSE(mat.loadV2Image(std::move(bad)));
    }
}

TEST(FormatV2, FuzzedCorruptionNeverReplaysWrongNumbers)
{
    // Contract: for ANY single-byte corruption the load either refuses
    // the image or the loaded trace replays bit-identical to the
    // original (alignment padding between sections is the only region
    // no checksum covers, and it carries no data).
    trace::MaterializedTrace built = buildFromV1(randomV1Image(9, 800));
    const std::vector<uint8_t> image = built.serializeV2();
    const profile::ProfileResult expect = built.replayProfile();

    Rng rng(0xf22du);
    int accepted = 0, rejected = 0;
    for (int i = 0; i < 200; ++i) {
        std::vector<uint8_t> bad = image;
        const size_t pos = rng.nextBelow(
            static_cast<uint32_t>(bad.size()));
        const uint8_t bit = static_cast<uint8_t>(
            1u << rng.nextBelow(8));
        bad[pos] ^= bit;
        trace::MaterializedTrace mat;
        if (!mat.loadV2Image(std::move(bad))) {
            ++rejected;
            continue;
        }
        ++accepted;
        const profile::ProfileResult got = mat.replayProfile();
        ASSERT_EQ(got.cycles, expect.cycles) << "byte " << pos;
        ASSERT_EQ(got.dynamicInstructions, expect.dynamicInstructions);
    }
    // Almost every flip must land in checksummed bytes.
    EXPECT_GT(rejected, 150);
    (void)accepted;
}

// ---------------- the acceptance gate ----------------

TEST(FormatV2, EveryPairMmapLoadMatchesVarintPathOnBothModels)
{
    // For every registry pair (allRuns() is counted, not enumerated,
    // so new workloads join automatically): capture once, then the
    // v2 file load
    // (the vprofd serving path) must replay bit-identical to the v1
    // varint decode (the original path) under both P5 and P6.
    ScratchDir scratch("mmxdsp_v2_pairs_test");
    harness::BenchmarkSuite suite(tinyConfig());
    for (const auto &[bench, version] : harness::BenchmarkSuite::allRuns()) {
        auto reader = suite.traceFor(bench, version);
        trace::MaterializedTrace fromV1;
        ASSERT_TRUE(fromV1.build(*reader)) << bench << "." << version;

        const std::string path =
            (scratch.path / (bench + "." + version + ".mxt2")).string();
        ASSERT_TRUE(writeFileAtomic(path, fromV1.serializeV2()));
        trace::MaterializedTrace fromV2;
        ASSERT_TRUE(fromV2.loadV2File(path)) << bench << "." << version;

        for (const sim::ModelKind model :
             {sim::ModelKind::P5, sim::ModelKind::P6,
              sim::ModelKind::P6P}) {
            const sim::MachineConfig machine{model, sim::TimerConfig{}};
            expectSameProfile(fromV2.replayProfile(machine),
                              fromV1.replayProfile(machine),
                              bench + "." + version + " on "
                                  + sim::modelName(model));
        }
    }
}

} // namespace
} // namespace mmxdsp
