/**
 * @file
 * Parameterized property sweeps across workload shapes: every benchmark
 * version must agree with its oracle at every size/seed/quality in the
 * sweep, and machine-level invariants (dual-issue bound, event-cost
 * accounting) must hold on arbitrary instruction streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>

#include "apps/image/image_app.hh"
#include "apps/jpeg/jpeg_decoder.hh"
#include "apps/jpeg/jpeg_encoder.hh"
#include "kernels/fft.hh"
#include "kernels/fir.hh"
#include "kernels/matvec.hh"
#include "nsp/vector.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"
#include "workloads/image_data.hh"

namespace mmxdsp {
namespace {

using profile::VProf;
using runtime::Cpu;

// ---------------- FIR across sizes and seeds ----------------

class FirSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>>
{
};

TEST_P(FirSweep, AllVersionsTrackReference)
{
    auto [samples, seed] = GetParam();
    kernels::FirBenchmark fir;
    fir.setup(samples, seed);
    Cpu cpu;
    fir.runC(cpu);
    fir.runFp(cpu);
    fir.runMmx(cpu);
    auto ref = fir.reference();
    double worst_mmx = 0.0;
    for (int n = 0; n < samples; ++n) {
        EXPECT_NEAR(fir.outC()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-4);
        EXPECT_NEAR(fir.outFp()[static_cast<size_t>(n)],
                    ref[static_cast<size_t>(n)], 1e-4);
        worst_mmx = std::max(worst_mmx,
                             std::fabs(fir.outMmx()[static_cast<size_t>(n)]
                                       - ref[static_cast<size_t>(n)]));
    }
    EXPECT_LT(worst_mmx, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FirSweep,
    ::testing::Combine(::testing::Values(64, 129, 512),
                       ::testing::Values(1ull, 77ull, 991ull)));

// ---------------- FFT across power-of-two sizes ----------------

class FftSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FftSweep, AllVersionsComputeTheSpectrum)
{
    const int n = GetParam();
    kernels::FftBenchmark fft;
    fft.setup(n, 5 + static_cast<uint64_t>(n));
    Cpu cpu;
    fft.runC(cpu);
    fft.runFp(cpu);
    fft.runMmx(cpu);
    fft.runMmxV1(cpu);
    auto ref = fft.reference();

    double peak = 0.0;
    for (const auto &v : ref)
        peak = std::max(peak, std::abs(v));
    for (int i = 0; i < n; ++i) {
        size_t s = static_cast<size_t>(i);
        EXPECT_LT(std::abs(fft.outC()[s] - ref[s]), peak * 1e-4) << i;
        EXPECT_LT(std::abs(fft.outFp()[s] - ref[s]), peak * 1e-4) << i;
        EXPECT_LT(std::abs(fft.outMmx()[s] - ref[s]), peak * 0.03) << i;
        EXPECT_LT(std::abs(fft.outMmxV1()[s] - ref[s]), peak * 0.10) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep,
                         ::testing::Values(16, 64, 128, 1024));

// ---------------- matvec across dims incl. ragged tails ----------------

class MatvecSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MatvecSweep, ExactAtEveryDim)
{
    const int dim = GetParam();
    kernels::MatvecBenchmark mv;
    mv.setup(dim, 100 + static_cast<uint64_t>(dim));
    Cpu cpu;
    mv.runC(cpu);
    mv.runMmx(cpu);
    auto ref = mv.reference();
    for (int i = 0; i < dim; ++i) {
        ASSERT_EQ(mv.outC()[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)])
            << "dim " << dim << " row " << i;
        ASSERT_EQ(mv.outMmx()[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)])
            << "dim " << dim << " row " << i;
    }
    EXPECT_EQ(mv.dotMmx(), ref[static_cast<size_t>(dim)]);
}

// 33/47: the scalar-tail paths of the library dot product.
INSTANTIATE_TEST_SUITE_P(Dims, MatvecSweep,
                         ::testing::Values(8, 33, 47, 64, 96));

// ---------------- dot product lengths (tail handling) ----------------

class DotProdSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DotProdSweep, MatchesScalarAtEveryLength)
{
    const int n = GetParam();
    Rng rng(static_cast<uint64_t>(n) * 31 + 1);
    std::vector<int16_t> a(static_cast<size_t>(n));
    std::vector<int16_t> b(static_cast<size_t>(n));
    int32_t expect = 0;
    for (int i = 0; i < n; ++i) {
        a[static_cast<size_t>(i)] =
            static_cast<int16_t>(rng.nextInRange(-3000, 3000));
        b[static_cast<size_t>(i)] =
            static_cast<int16_t>(rng.nextInRange(-3000, 3000));
        expect += static_cast<int32_t>(a[static_cast<size_t>(i)])
                  * b[static_cast<size_t>(i)];
    }
    Cpu cpu;
    EXPECT_EQ(nsp::dotProdMmx(cpu, a.data(), b.data(), n).v, expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DotProdSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 11, 12,
                                           15, 16, 17, 100));

// ---------------- JPEG across qualities and sizes ----------------

class JpegSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(JpegSweep, RoundTripsAtEveryQuality)
{
    auto [w, h, quality] = GetParam();
    auto img = workloads::makeTestImage(w, h, 500 + quality);
    apps::jpeg::JpegBenchmark bench;
    bench.setup(img, quality);
    Cpu cpu;
    bench.runC(cpu);
    bench.runMmx(cpu);

    auto dec_c = apps::jpeg::decodeJpeg(bench.jpegC());
    auto dec_m = apps::jpeg::decodeJpeg(bench.jpegMmx());
    double psnr_c = imagePsnr(img, dec_c);
    double psnr_m = imagePsnr(img, dec_m);
    // Lower quality still decodes sanely, higher quality is better.
    double floor = quality >= 75 ? 28.0 : (quality >= 50 ? 24.0 : 21.0);
    EXPECT_GT(psnr_c, floor) << "q" << quality;
    EXPECT_GT(psnr_m, floor - 1.0) << "q" << quality;
    EXPECT_GT(imagePsnr(dec_c, dec_m), 28.0)
        << "versions should be visually identical";
}

INSTANTIATE_TEST_SUITE_P(
    Qualities, JpegSweep,
    ::testing::Values(std::tuple{48, 32, 30}, std::tuple{48, 32, 50},
                      std::tuple{48, 32, 75}, std::tuple{48, 32, 92},
                      std::tuple{40, 56, 75}));

TEST(JpegProperty, HigherQualityMeansBiggerFileAndHigherPsnr)
{
    auto img = workloads::makeTestImage(64, 48, 9);
    Cpu cpu;
    size_t last_size = 0;
    double last_psnr = 0.0;
    for (int q : {25, 50, 75, 95}) {
        apps::jpeg::JpegBenchmark bench;
        bench.setup(img, q);
        bench.runC(cpu);
        auto dec = apps::jpeg::decodeJpeg(bench.jpegC());
        double psnr = imagePsnr(img, dec);
        EXPECT_GT(bench.jpegC().size(), last_size) << "q" << q;
        EXPECT_GT(psnr, last_psnr) << "q" << q;
        last_size = bench.jpegC().size();
        last_psnr = psnr;
    }
}

// ---------------- machine-level invariants ----------------

class RandomProgramSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramSweep, TimingInvariantsHold)
{
    // Random instrumented programs: the dual-issue model can never
    // retire more than 2 instructions per cycle, per-site cycles must
    // sum to the total, and uops >= instructions.
    Rng rng(GetParam());
    Cpu cpu;
    VProf prof;
    cpu.attachSink(&prof);

    int32_t mem[256] = {};
    alignas(8) int16_t vec[64] = {};
    runtime::R32 acc = cpu.imm32(0);
    runtime::M64 macc = cpu.mmxZero();
    for (int i = 0; i < 2000; ++i) {
        switch (rng.nextBelow(8)) {
          case 0:
            acc = cpu.addLoad32(acc, &mem[rng.nextBelow(256)]);
            break;
          case 1:
            acc = cpu.imulImm(acc, 3);
            break;
          case 2:
            cpu.store32(&mem[rng.nextBelow(256)], acc);
            break;
          case 3:
            macc = cpu.paddw(macc, cpu.movqLoad(&vec[rng.nextBelow(56)]));
            break;
          case 4:
            macc = cpu.pmaddwdLoad(macc, &vec[rng.nextBelow(56) & ~3u]);
            break;
          case 5: {
            cpu.cmpImm(acc, 0);
            cpu.jcc(rng.nextBelow(2) != 0);
            break;
          }
          case 6: {
            runtime::F64 f = cpu.fild32(&mem[rng.nextBelow(256)]);
            f = cpu.fmul(f, cpu.fimm(1.5));
            cpu.fistp32(&mem[rng.nextBelow(256)], f);
            break;
          }
          default:
            acc = cpu.xor_(acc, cpu.imm32(static_cast<int32_t>(rng.next())));
            break;
        }
    }
    cpu.attachSink(nullptr);

    auto r = prof.result();
    // Dual issue: cycles >= instructions / 2.
    EXPECT_GE(2 * r.cycles, r.dynamicInstructions);
    // Micro-ops never fewer than instructions.
    EXPECT_GE(r.uops, r.dynamicInstructions);
    // Per-site cycle accounting is exact.
    uint64_t sum = 0;
    for (const auto &st : prof.sites())
        sum += st.cycles;
    EXPECT_EQ(sum, r.cycles);
    // Static sites bounded by distinct source locations used above.
    EXPECT_LE(r.staticInstructions, 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 0xfeedull));

// ---------------- image app across shapes ----------------

class ImageSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(ImageSweep, VersionsStayIdentical)
{
    auto [w, h, dim] = GetParam();
    auto img = workloads::makeTestImage(w, h, 60 + static_cast<uint64_t>(dim));
    apps::image::ImageBenchmark bench;
    bench.setup(img, static_cast<uint16_t>(dim));
    Cpu cpu;
    bench.runC(cpu);
    bench.runMmx(cpu);
    EXPECT_EQ(bench.outC().rgb, bench.outMmx().rgb);
    EXPECT_EQ(bench.outC().rgb, bench.reference().rgb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ImageSweep,
    ::testing::Values(std::tuple{8, 3, 128}, std::tuple{16, 16, 180},
                      std::tuple{40, 24, 255}, std::tuple{8, 1, 1},
                      std::tuple{64, 48, 256}));

} // namespace
} // namespace mmxdsp
