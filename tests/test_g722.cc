/**
 * @file
 * Tests for the G.722-style subband ADPCM codec and its benchmark
 * wrapper: QMF transparency, reconstruction SNR for both precision
 * modes, the paper's "slightly inferior" MMX quality, and the
 * instruction-level slowdown signature.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "apps/g722/g722_app.hh"
#include "apps/g722/g722_codec.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "workloads/signal_data.hh"

namespace mmxdsp::apps::g722 {
namespace {

using profile::VProf;
using runtime::Cpu;

double
snrWithDelay(const std::vector<int16_t> &x, const std::vector<int16_t> &y,
             int delay)
{
    double sig = 0.0;
    double err = 0.0;
    for (size_t n = 0; n + static_cast<size_t>(delay) < y.size(); ++n) {
        double s = x[n];
        double d = y[n + static_cast<size_t>(delay)];
        sig += s * s;
        double e = s - d;
        err += e * e;
    }
    return 10.0 * std::log10(sig / (err + 1e-30));
}

std::vector<int16_t>
sineInput(int n, double freq_norm, double amplitude)
{
    std::vector<int16_t> x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        x[static_cast<size_t>(i)] = static_cast<int16_t>(
            amplitude * 32767.0
            * std::sin(2.0 * std::numbers::pi * freq_norm * i));
    return x;
}

TEST(G722Codec, ReconstructsLowFrequencyTone)
{
    // A 500 Hz tone at 16 kHz lives deep in the low band: 6-bit ADPCM
    // should track it well.
    auto x = sineInput(4000, 500.0 / 16000.0, 0.4);
    G722Codec codec(G722Codec::Mode::ScalarC);
    Cpu cpu;
    std::vector<int16_t> y(x.size(), 0);
    for (size_t n = 0; n + 1 < x.size(); n += 2) {
        uint8_t code = codec.encodePair(cpu, &x[n]);
        codec.decodePair(cpu, code, &y[n]);
    }
    double snr = snrWithDelay(x, y, G722Codec::kDelay);
    EXPECT_GT(snr, 14.0) << "low-band ADPCM SNR too poor";
}

TEST(G722Codec, ReconstructsSpeech)
{
    auto x = workloads::makeSpeech(6000, 9);
    G722Codec codec(G722Codec::Mode::ScalarC);
    Cpu cpu;
    std::vector<int16_t> y(x.size(), 0);
    for (size_t n = 0; n + 1 < x.size(); n += 2) {
        uint8_t code = codec.encodePair(cpu, &x[n]);
        codec.decodePair(cpu, code, &y[n]);
    }
    EXPECT_GT(snrWithDelay(x, y, G722Codec::kDelay), 8.0);
}

TEST(G722Codec, SilenceStaysSilent)
{
    G722Codec codec(G722Codec::Mode::ScalarC);
    Cpu cpu;
    int16_t zeros[2] = {0, 0};
    int16_t out[2];
    for (int i = 0; i < 200; ++i) {
        uint8_t code = codec.encodePair(cpu, zeros);
        codec.decodePair(cpu, code, out);
    }
    // Quantizer should have decayed to its floor; output ~ quiet.
    EXPECT_LT(std::abs(out[0]), 64);
    EXPECT_LT(std::abs(out[1]), 64);
}

TEST(G722Codec, EncoderAndDecoderPredictorsStayInLockstep)
{
    // With a clean channel the decoder state mirrors the encoder's, so
    // long runs must not diverge (stability of the adaptation).
    auto x = sineInput(8000, 1100.0 / 16000.0, 0.6);
    G722Codec codec(G722Codec::Mode::ScalarC);
    Cpu cpu;
    std::vector<int16_t> y(x.size(), 0);
    for (size_t n = 0; n + 1 < x.size(); n += 2) {
        uint8_t code = codec.encodePair(cpu, &x[n]);
        codec.decodePair(cpu, code, &y[n]);
    }
    // SNR over the last quarter should be at least as good as overall:
    // i.e. no slow divergence.
    std::vector<int16_t> x_tail(x.end() - 2000, x.end());
    std::vector<int16_t> y_tail(y.end() - 2000, y.end());
    double snr_tail = snrWithDelay(x_tail, y_tail, G722Codec::kDelay);
    EXPECT_GT(snr_tail, 10.0);
}

TEST(G722Benchmark, MmxQualityTolerable)
{
    G722Benchmark bench;
    bench.setup(3072, 12); // the paper's ~6 kB speech file
    Cpu cpu;
    bench.runC(cpu);
    bench.runMmx(cpu);

    double snr_c = bench.snrC();
    double snr_mmx = bench.snrMmx();
    EXPECT_GT(snr_c, 8.0);
    EXPECT_GT(snr_mmx, 5.0) << "MMX version should still be tolerable";
    // Energy-weighted SNR is dominated by loud passages where the two
    // are equivalent; the audible difference lives in quiet passages
    // (next test).
    EXPECT_LT(snr_mmx, snr_c + 1.0);
}

TEST(G722Benchmark, MmxNoiseFloorIsHigherInSilence)
{
    // The MMX path's a-priori >>2 input scale raises its effective
    // quantizer floor 4x: in silent passages the decoded residual
    // noise is audibly larger — the paper's "tolerable, but slightly
    // inferior" speech quality.
    auto tone = sineInput(1024, 700.0 / 16000.0, 0.5);
    std::vector<int16_t> input = tone;
    input.resize(2048, 0); // silent tail

    auto tail_noise = [&](G722Codec::Mode mode) {
        G722Codec codec(mode);
        Cpu cpu;
        std::vector<int16_t> out(input.size(), 0);
        for (size_t n = 0; n + 1 < input.size(); n += 2) {
            uint8_t code = codec.encodePair(cpu, &input[n]);
            codec.decodePair(cpu, code, &out[n]);
        }
        double acc = 0.0;
        for (size_t n = 1600; n < out.size(); ++n)
            acc += static_cast<double>(out[n]) * out[n];
        return acc;
    };

    double noise_c = tail_noise(G722Codec::Mode::ScalarC);
    double noise_mmx = tail_noise(G722Codec::Mode::Mmx);
    EXPECT_GT(noise_mmx, noise_c)
        << "16-bit scaled path should have the higher silence floor";
}

TEST(G722Benchmark, MmxVersionIsSlowerWithMoreInstructions)
{
    G722Benchmark bench;
    bench.setup(1024, 13);
    Cpu cpu;

    VProf prof_c;
    cpu.attachSink(&prof_c);
    bench.runC(cpu);
    cpu.attachSink(nullptr);

    VProf prof_mmx;
    cpu.attachSink(&prof_mmx);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = prof_c.result();
    auto rmmx = prof_mmx.result();

    // Paper Table 3 (g722.c / g722.mmx): speedup 0.77 (slowdown),
    // dynamic instruction ratio 0.66 (MMX executes MORE instructions).
    EXPECT_GT(rmmx.cycles, rc.cycles);
    EXPECT_GT(rmmx.dynamicInstructions, rc.dynamicInstructions);
    // Low MMX share (paper: 1.58%).
    EXPECT_LT(rmmx.pctMmx(), 0.15);
    // Far more function calls through the library interfaces.
    EXPECT_GT(rmmx.functionCalls, 2 * rc.functionCalls);
}

TEST(G722Block, BitstreamMatchesPerPairEncodingExactly)
{
    // The block encoder batches the QMF into strided 24-tap library
    // convolutions; the arithmetic is identical, so the bitstream must
    // be bit-exact against the per-pair encoder.
    auto x = workloads::makeSpeech(1024, 17);
    Cpu cpu;

    G722Codec pair_codec(G722Codec::Mode::Mmx);
    std::vector<uint8_t> pair_bytes;
    for (size_t n = 0; n + 1 < x.size(); n += 2)
        pair_bytes.push_back(pair_codec.encodePair(cpu, &x[n]));

    G722Codec block_codec(G722Codec::Mode::Mmx);
    std::vector<uint8_t> block_bytes(x.size() / 2);
    const int block_pairs = 32;
    for (size_t n = 0; n + 2 * block_pairs <= x.size();
         n += 2 * block_pairs) {
        block_codec.encodeBlock(cpu, &x[n], block_pairs,
                                &block_bytes[n / 2]);
    }
    EXPECT_EQ(block_bytes, pair_bytes);
}

TEST(G722Block, ScalarFallbackMatchesToo)
{
    auto x = workloads::makeSpeech(256, 18);
    Cpu cpu;
    G722Codec a(G722Codec::Mode::ScalarC);
    G722Codec b(G722Codec::Mode::ScalarC);
    std::vector<uint8_t> pair_bytes;
    for (size_t n = 0; n + 1 < x.size(); n += 2)
        pair_bytes.push_back(a.encodePair(cpu, &x[n]));
    std::vector<uint8_t> block_bytes(x.size() / 2);
    b.encodeBlock(cpu, x.data(), static_cast<int>(x.size() / 2),
                  block_bytes.data());
    EXPECT_EQ(block_bytes, pair_bytes);
}

TEST(G722Block, BlockModeIsFasterThanPerPairMmx)
{
    // The point of the extension: batching recovers the library-call
    // overhead the paper blamed for the g722 slowdown.
    auto x = workloads::makeSpeech(2048, 19);
    Cpu cpu;

    VProf pair_prof;
    G722Codec pair_codec(G722Codec::Mode::Mmx);
    cpu.attachSink(&pair_prof);
    for (size_t n = 0; n + 1 < x.size(); n += 2) {
        uint8_t byte = pair_codec.encodePair(cpu, &x[n]);
        (void)byte;
    }
    cpu.attachSink(nullptr);

    VProf block_prof;
    G722Codec block_codec(G722Codec::Mode::Mmx);
    std::vector<uint8_t> out(x.size() / 2);
    cpu.attachSink(&block_prof);
    for (size_t n = 0; n + 128 <= x.size(); n += 128)
        block_codec.encodeBlock(cpu, &x[n], 64, &out[n / 2]);
    cpu.attachSink(nullptr);

    EXPECT_LT(block_prof.result().cycles, pair_prof.result().cycles);
    EXPECT_LT(block_prof.result().functionCalls,
              pair_prof.result().functionCalls);
}

TEST(G722Block, DecodeBlockMatchesPerPairExactly)
{
    auto x = workloads::makeSpeech(1024, 21);
    Cpu cpu;

    // Produce one bitstream.
    G722Codec enc(G722Codec::Mode::Mmx);
    std::vector<uint8_t> bytes(x.size() / 2);
    enc.encodeBlock(cpu, x.data(), static_cast<int>(bytes.size()),
                    bytes.data());

    // Decode per-pair and per-block; outputs must be bit-identical.
    G722Codec dec_pair(G722Codec::Mode::Mmx);
    std::vector<int16_t> out_pair(x.size(), 0);
    for (size_t p = 0; p < bytes.size(); ++p)
        dec_pair.decodePair(cpu, bytes[p], &out_pair[2 * p]);

    G722Codec dec_block(G722Codec::Mode::Mmx);
    std::vector<int16_t> out_block(x.size(), 0);
    const int block = 32;
    for (size_t p = 0; p + block <= bytes.size(); p += block)
        dec_block.decodeBlock(cpu, &bytes[p], block, &out_block[2 * p]);

    EXPECT_EQ(out_block, out_pair);
}

TEST(G722Block, FullBlockCodecRoundTripQuality)
{
    // End-to-end block codec: encodeBlock -> decodeBlock reconstructs
    // speech at the same quality as the per-pair codec.
    auto x = workloads::makeSpeech(2048, 22);
    Cpu cpu;
    G722Codec enc(G722Codec::Mode::Mmx);
    G722Codec dec(G722Codec::Mode::Mmx);
    std::vector<uint8_t> bytes(x.size() / 2);
    std::vector<int16_t> out(x.size(), 0);
    const int block = 64;
    for (size_t p = 0; p + block <= bytes.size(); p += block) {
        enc.encodeBlock(cpu, &x[2 * p], block, &bytes[p]);
        dec.decodeBlock(cpu, &bytes[p], block, &out[2 * p]);
    }
    EXPECT_GT(snrWithDelay(x, out, G722Codec::kDelay), 5.0);
}

} // namespace
} // namespace mmxdsp::apps::g722
