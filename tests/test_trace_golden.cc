/**
 * @file
 * Regression gates for the trace format and the live-capture path.
 *
 * The batched emit path (runtime::Cpu buffering kEmitBatch events per
 * TraceSink::onInstrBatch call) must be invisible on disk: the same
 * execution captured batched and per-instruction has to produce the
 * same bytes, the encoder itself has to stay byte-stable for a fixed
 * event stream, and SuiteConfig::hash() — the trace-cache key — must
 * not move, or every cached trace on every machine is silently
 * invalidated.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/suite.hh"
#include "isa/event.hh"
#include "kernels/fir.hh"
#include "runtime/cpu.hh"
#include "sim/trace_sink.hh"
#include "trace/format.hh"
#include "trace/writer.hh"

namespace mmxdsp {
namespace {

// ---------------- cache-key stability ----------------

// A change here means every existing on-disk trace cache misses (or
// worse, collides): bump only with a deliberate workload/format
// migration. Last bumped when the gemm_dim/gemm_block workload fields
// joined the key.
TEST(TraceGolden, SuiteConfigHashIsStable)
{
    harness::SuiteConfig config;
    EXPECT_EQ(config.hash(), 0x8fc92f1c99584f5full);

    harness::SuiteConfig eighth;
    eighth.scaleDown(8);
    EXPECT_EQ(eighth.hash(), 0xa591fef502cf4b19ull);

    harness::SuiteConfig thirtysecond;
    thirtysecond.scaleDown(32);
    EXPECT_EQ(thirtysecond.hash(), 0x109e820b5e76d541ull);
}

// ---------------- batched capture == per-event capture ----------------

/** Forwards every event one at a time into a second TraceWriter.
 *  Deliberately does NOT override onInstrBatch: the base class unrolls
 *  batches into per-instruction onInstr calls, i.e. the historical
 *  delivery cadence. */
class PerEventRelay final : public sim::TraceSink
{
  public:
    explicit PerEventRelay(trace::TraceWriter &w) : w_(w) {}
    void onInstr(const isa::InstrEvent &e) override { w_.onInstr(e); }
    void onEnterFunction(const char *n) override { w_.onEnterFunction(n); }
    void onLeaveFunction() override { w_.onLeaveFunction(); }

  private:
    trace::TraceWriter &w_;
};

TEST(TraceGolden, BatchedCaptureIsByteIdenticalToPerEventCapture)
{
    // One real benchmark pair, captured once. The tee hands each block
    // to `batched` through onInstrBatch and unrolls the same block
    // per-instruction into `unbatched`; since both writers see the
    // identical sequence in the identical process, their serialized
    // images (delta-encoded addresses and all) must match byte for
    // byte. This pins the whole batching layer — block boundaries,
    // enter/leave flush points, tail flush on detach — to the exact
    // on-disk artifact the per-instruction path produced.
    kernels::FirBenchmark fir;
    fir.setup(512, 42);
    runtime::Cpu cpu;

    for (const char *version : {"c", "mmx"}) {
        trace::TraceWriter batched("fir", version, 0x1234);
        trace::TraceWriter unbatched("fir", version, 0x1234);
        PerEventRelay relay(unbatched);
        sim::TeeSink tee(&batched, &relay);

        cpu.attachSink(&tee);
        if (version[0] == 'c')
            fir.runC(cpu);
        else
            fir.runMmx(cpu);
        cpu.attachSink(nullptr);

        batched.finish(&cpu);
        unbatched.finish(&cpu);
        ASSERT_GT(batched.instrCount(), 1000u) << version;
        EXPECT_EQ(batched.instrCount(), unbatched.instrCount()) << version;
        EXPECT_EQ(batched.serialize(), unbatched.serialize()) << version;
    }
}

// ---------------- encoder byte-stability ----------------

/** A fixed, address-deterministic event stream (no heap pointers), so
 *  the serialized image is reproducible across processes and builds. */
void
writeFixedStream(trace::TraceWriter &writer)
{
    uint64_t addr = 0x1000;
    for (int i = 0; i < 800; ++i) {
        isa::InstrEvent e;
        e.op = static_cast<isa::Op>(i % isa::kNumOps);
        e.site = static_cast<uint32_t>((i * 7) % 23);
        e.mem = static_cast<isa::MemMode>(i % 3);
        if (e.mem != isa::MemMode::None) {
            addr += (i % 5) * 4 - 8; // mix positive and negative deltas
            e.addr = addr;
            e.size = static_cast<uint8_t>(1u << (i % 4));
        }
        if (i % 4 != 0)
            e.src0 = isa::makeTag(isa::RegClass::Mmx, i % 8);
        if (i % 5 != 0)
            e.src1 = isa::makeTag(isa::RegClass::Int, i % 6);
        if (i % 3 != 0)
            e.dst = isa::makeTag(isa::RegClass::Fp, i % 8);
        e.taken = i % 7 == 0;

        if (i % 100 == 0)
            writer.onEnterFunction(i % 200 == 0 ? "even" : "odd");
        writer.onInstr(e);
        if (i % 100 == 99)
            writer.onLeaveFunction();
    }
    writer.finish();
}

TEST(TraceGolden, EncoderImageIsByteStable)
{
    // Golden FNV-1a of the serialized image for the fixed stream above,
    // captured from the pre-batching encoder. Any drift in the varint
    // packing, delta encoding, or header layout trips this.
    trace::TraceWriter writer("golden", "mmx", 0xfeedfacecafef00dull);
    writeFixedStream(writer);
    const std::vector<uint8_t> image = writer.serialize();
    EXPECT_EQ(image.size(), 5297u);
    EXPECT_EQ(trace::fnv1a(image.data(), image.size()),
              0x911db3b9c13b3ce4ull);
}

} // namespace
} // namespace mmxdsp
