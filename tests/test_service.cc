/**
 * @file
 * Tests for the vprofd service layer: the sharded TraceStore (round
 * trips, stable sharding, v1 upgrade, quarantine, LRU eviction,
 * concurrency) and the QueryEngine (result cache, batch-vs-scalar
 * identity, capture-free cold restart, untrusted query parsing).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/suite.hh"
#include "service/query_engine.hh"
#include "service/trace_store.hh"
#include "support/io.hh"
#include "support/rng.hh"
#include "trace/format_v2.hh"
#include "trace/materialize.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace mmxdsp {
namespace {

namespace fs = std::filesystem;

struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const char *name)
        : path(fs::temp_directory_path() / name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

harness::SuiteConfig
tinyConfig()
{
    harness::SuiteConfig config;
    config.scaleDown(16);
    return config;
}

/** A small synthetic trace (no live run needed for store tests). */
trace::MaterializedTrace
syntheticTrace(uint64_t seed, uint64_t config_hash, int events = 400)
{
    Rng rng(seed);
    trace::TraceWriter writer("synth", "c", config_hash);
    writer.onEnterFunction("work");
    for (int i = 0; i < events; ++i) {
        isa::InstrEvent e;
        e.op = static_cast<isa::Op>(rng.nextBelow(isa::kNumOps));
        e.site = rng.nextBelow(64);
        writer.onInstr(e);
    }
    writer.onLeaveFunction();
    writer.finish();

    trace::TraceReader reader;
    EXPECT_TRUE(reader.parse(writer.serialize()));
    trace::MaterializedTrace mat;
    EXPECT_TRUE(mat.build(reader));
    return mat;
}

service::StoreOptions
storeOpts(const ScratchDir &scratch, uint32_t shards = 8)
{
    service::StoreOptions opts;
    opts.root = (scratch.path / "store").string();
    opts.shards = shards;
    return opts;
}

/** All regular files under @p dir whose path contains @p needle. */
std::vector<std::string>
filesContaining(const fs::path &dir, const std::string &needle)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &de :
         fs::recursive_directory_iterator(dir, ec)) {
        if (de.is_regular_file(ec)
            && de.path().string().find(needle) != std::string::npos)
            out.push_back(de.path().string());
    }
    return out;
}

// ---------------- TraceStore ----------------

TEST(TraceStoreTest, StoreThenLoadRoundTrips)
{
    ScratchDir scratch("mmxdsp_store_roundtrip_test");
    service::TraceStore store(storeOpts(scratch));

    EXPECT_EQ(store.load("synth", "c", 0x1234), nullptr);
    EXPECT_EQ(store.stats().misses, 1u);

    trace::MaterializedTrace mat = syntheticTrace(1, 0x1234);
    ASSERT_TRUE(store.store("synth", "c", 0x1234, mat));
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_GT(store.totalBytes(), 0u);

    auto loaded = store.load("synth", "c", 0x1234);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->instrCount(), mat.instrCount());
    EXPECT_EQ(loaded->configHash(), 0x1234u);
    EXPECT_EQ(loaded->replayProfile().cycles, mat.replayProfile().cycles);

    const service::StoreStats stats = store.stats();
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.v2_hits, 1u);
    EXPECT_EQ(stats.v1_hits, 0u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(TraceStoreTest, ShardingIsStableAcrossInstances)
{
    // The shard is a pure function of the key: a second store instance
    // (a different process in real life) with a different root and a
    // fresh state must route every key to the same shard, or corpus
    // lookups would miss entries written by another process.
    ScratchDir scratch("mmxdsp_store_shard_test");
    service::TraceStore a(storeOpts(scratch, 16));
    service::StoreOptions bOpts = storeOpts(scratch, 16);
    bOpts.root = (scratch.path / "other_root").string();
    service::TraceStore b(bOpts);

    std::set<uint32_t> seen;
    for (int i = 0; i < 64; ++i) {
        const std::string bench = "bench" + std::to_string(i);
        const uint64_t h = 0x9000u + static_cast<uint64_t>(i);
        const uint32_t shard = a.shardOf(bench, "mmx", h);
        EXPECT_LT(shard, 16u);
        EXPECT_EQ(shard, b.shardOf(bench, "mmx", h));
        seen.insert(shard);
    }
    // 64 distinct keys into 16 shards must not all collapse into one
    // directory, or sharding buys nothing.
    EXPECT_GT(seen.size(), 4u);

    // Different key components move the shard (not a constant).
    std::set<uint32_t> varied{a.shardOf("fir", "c", 1),
                              a.shardOf("fir", "mmx", 1),
                              a.shardOf("fft", "c", 1),
                              a.shardOf("fir", "c", 2)};
    EXPECT_GT(varied.size(), 1u);
}

TEST(TraceStoreTest, LegacyV1EntryIsServedAndUpgraded)
{
    ScratchDir scratch("mmxdsp_store_v1_test");
    service::TraceStore store(storeOpts(scratch));

    // Plant a raw v1 file where the legacy path says it belongs.
    Rng rng(11);
    trace::TraceWriter writer("synth", "c", 0x77);
    for (int i = 0; i < 300; ++i) {
        isa::InstrEvent e;
        e.op = static_cast<isa::Op>(rng.nextBelow(isa::kNumOps));
        writer.onInstr(e);
    }
    writer.finish();
    const std::vector<uint8_t> v1 = writer.serialize();
    const std::string p1 = store.legacyPath("synth", "c", 0x77);
    fs::create_directories(fs::path(p1).parent_path());
    ASSERT_TRUE(writeFileAtomic(p1, v1));

    trace::TraceReader reader;
    ASSERT_TRUE(reader.parse(std::vector<uint8_t>(v1)));
    trace::MaterializedTrace expect;
    ASSERT_TRUE(expect.build(reader));

    auto first = store.load("synth", "c", 0x77);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->replayProfile().cycles, expect.replayProfile().cycles);
    EXPECT_EQ(store.stats().v1_hits, 1u);
    EXPECT_EQ(store.stats().upgraded, 1u);
    // Upgrade retired the v1 file and published a v2 replacement.
    EXPECT_FALSE(fs::exists(p1));
    EXPECT_TRUE(fs::exists(store.path("synth", "c", 0x77)));

    auto second = store.load("synth", "c", 0x77);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->replayProfile().cycles,
              expect.replayProfile().cycles);
    EXPECT_EQ(store.stats().v2_hits, 1u);
}

TEST(TraceStoreTest, CorruptEntryIsQuarantinedAndSurvivesRewrite)
{
    ScratchDir scratch("mmxdsp_store_quarantine_test");
    service::TraceStore store(storeOpts(scratch));
    trace::MaterializedTrace mat = syntheticTrace(2, 0xbeef);
    ASSERT_TRUE(store.store("synth", "c", 0xbeef, mat));

    // Truncate the entry in place (always invalid: the final section
    // runs to end of file).
    const std::string path = store.path("synth", "c", 0xbeef);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(readFile(path, bytes));
    bytes.resize(bytes.size() / 2);
    ASSERT_TRUE(writeFileAtomic(path, bytes));

    EXPECT_EQ(store.load("synth", "c", 0xbeef), nullptr);
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(fs::exists(path));
    auto quarantined = filesContaining(scratch.path, "/quarantine/");
    ASSERT_EQ(quarantined.size(), 1u);

    // Re-publishing the key must not disturb the quarantined evidence,
    // and the store must serve the fresh entry again.
    ASSERT_TRUE(store.store("synth", "c", 0xbeef, mat));
    auto reloaded = store.load("synth", "c", 0xbeef);
    ASSERT_NE(reloaded, nullptr);
    EXPECT_EQ(reloaded->replayProfile().cycles,
              mat.replayProfile().cycles);
    EXPECT_EQ(filesContaining(scratch.path, "/quarantine/"), quarantined);

    // Quarantined files are out of the corpus accounting.
    EXPECT_EQ(store.entryCount(), 1u);
}

TEST(TraceStoreTest, ShardUsageBreaksDownCorpusByShard)
{
    ScratchDir scratch("mmxdsp_store_usage_test");
    service::TraceStore store(storeOpts(scratch, 8));

    trace::MaterializedTrace mat = syntheticTrace(4, 0xfeed);
    std::vector<std::string> benches{"fir", "fft", "dct", "g711"};
    for (const std::string &bench : benches)
        ASSERT_TRUE(store.store(bench, "c", 0xfeed, mat));

    // One row per configured shard; totals must agree with the flat
    // accounting, and each entry must sit in the shard shardOf() names.
    std::vector<service::ShardUsage> usage = store.shardUsage();
    ASSERT_EQ(usage.size(), 8u);
    uint64_t entries = 0, bytes = 0, parked = 0;
    for (const service::ShardUsage &u : usage) {
        EXPECT_EQ(u.shard, static_cast<uint32_t>(&u - usage.data()));
        entries += u.entries;
        bytes += u.bytes;
        parked += u.quarantined;
    }
    EXPECT_EQ(entries, store.entryCount());
    EXPECT_EQ(bytes, store.totalBytes());
    EXPECT_EQ(parked, 0u);
    for (const std::string &bench : benches)
        EXPECT_GE(usage[store.shardOf(bench, "c", 0xfeed)].entries, 1u);

    // Corrupt one entry: it must leave its shard's live count and show
    // up in the same shard's quarantine count (quarantineFile parks
    // evidence beside the shard that served it).
    const uint32_t shard = store.shardOf("fir", "c", 0xfeed);
    const std::string path = store.path("fir", "c", 0xfeed);
    std::vector<uint8_t> raw;
    ASSERT_TRUE(readFile(path, raw));
    raw.resize(raw.size() / 2);
    ASSERT_TRUE(writeFileAtomic(path, raw));
    EXPECT_EQ(store.load("fir", "c", 0xfeed), nullptr);

    usage = store.shardUsage();
    EXPECT_EQ(usage[shard].quarantined, 1u);
    uint64_t live = 0;
    for (const service::ShardUsage &u : usage)
        live += u.entries;
    EXPECT_EQ(live, benches.size() - 1);
}

TEST(TraceStoreTest, KeyMismatchedEntryIsQuarantined)
{
    // A file whose embedded key disagrees with its name (a mis-filed
    // or stale entry) must not be served under the wrong key.
    ScratchDir scratch("mmxdsp_store_mismatch_test");
    service::TraceStore store(storeOpts(scratch));
    trace::MaterializedTrace mat = syntheticTrace(3, 0x1);
    const std::string wrong = store.path("synth", "c", 0x2);
    fs::create_directories(fs::path(wrong).parent_path());
    ASSERT_TRUE(writeFileAtomic(wrong, mat.serializeV2()));

    EXPECT_EQ(store.load("synth", "c", 0x2), nullptr);
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(fs::exists(wrong));
}

TEST(TraceStoreTest, EvictionRespectsBudgetAndKeepsNewest)
{
    ScratchDir scratch("mmxdsp_store_evict_test");
    service::StoreOptions opts = storeOpts(scratch);
    service::TraceStore unbudgeted(opts);

    // Publish several same-sized entries with strictly ordered mtimes.
    const int n = 6;
    uint64_t per_entry = 0;
    for (int i = 0; i < n; ++i) {
        trace::MaterializedTrace mat =
            syntheticTrace(100 + i, static_cast<uint64_t>(i));
        ASSERT_TRUE(unbudgeted.store("synth", "c",
                                     static_cast<uint64_t>(i), mat));
        const std::string p =
            unbudgeted.path("synth", "c", static_cast<uint64_t>(i));
        fs::last_write_time(
            p, fs::file_time_type(std::chrono::seconds(1000 + i)));
        if (i == 0)
            per_entry = fs::file_size(p);
    }
    ASSERT_GT(per_entry, 0u);

    // A budget of ~2.5 entries must evict the 4 oldest, keep the rest.
    service::StoreOptions budgeted = opts;
    budgeted.budget_bytes = per_entry * 5 / 2;
    service::TraceStore store(budgeted);
    const uint64_t removed = store.enforceBudget();
    EXPECT_GT(removed, 0u);
    EXPECT_LE(store.totalBytes(), budgeted.budget_bytes);
    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_EQ(store.stats().evicted, 4u);
    // LRU: the two most recently touched entries survive.
    EXPECT_NE(store.load("synth", "c", n - 1), nullptr);
    EXPECT_NE(store.load("synth", "c", n - 2), nullptr);
    EXPECT_EQ(store.load("synth", "c", 0), nullptr);
}

TEST(TraceStoreTest, ReaderSurvivesConcurrentEviction)
{
    // POSIX semantics: a trace mmap'd before its file is evicted must
    // stay fully readable. Readers hammer loads while an evictor
    // repeatedly shrinks the corpus to zero.
    ScratchDir scratch("mmxdsp_store_concurrent_test");
    service::StoreOptions opts = storeOpts(scratch);
    opts.budget_bytes = 1; // evict everything on every enforce
    service::TraceStore store(opts);

    const int kKeys = 4;
    std::vector<uint64_t> expect_cycles;
    trace::MaterializedTrace mats[kKeys];
    for (int i = 0; i < kKeys; ++i) {
        mats[i] = syntheticTrace(200 + i, static_cast<uint64_t>(i), 1500);
        expect_cycles.push_back(mats[i].replayProfile().cycles);
    }

    std::atomic<bool> stop{false};
    std::atomic<int> served{0};
    std::thread writer([&] {
        while (!stop.load()) {
            for (int i = 0; i < kKeys; ++i)
                store.store("synth", "c", static_cast<uint64_t>(i),
                            mats[i]);
        }
    });
    std::thread evictor([&] {
        while (!stop.load())
            store.enforceBudget();
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            Rng rng(static_cast<uint64_t>(t) + 1);
            // Spin until this reader has caught a few entries in the
            // publish->evict window (bounded by a wall-clock deadline
            // so a pathological scheduler can't hang the test).
            const auto deadline = std::chrono::steady_clock::now()
                                  + std::chrono::seconds(10);
            int mine = 0;
            while (mine < 5
                   && std::chrono::steady_clock::now() < deadline) {
                const int key =
                    static_cast<int>(rng.nextBelow(kKeys));
                auto mat = store.load("synth", "c",
                                      static_cast<uint64_t>(key));
                if (!mat)
                    continue; // evicted between publish and load: fine
                // The mapping must stay valid even if the file is
                // unlinked while we replay.
                EXPECT_EQ(mat->replayProfile().cycles,
                          expect_cycles[static_cast<size_t>(key)]);
                ++mine;
                ++served;
            }
        });
    }
    for (auto &r : readers)
        r.join();
    stop.store(true);
    writer.join();
    evictor.join();
    EXPECT_GT(served.load(), 0);
}

TEST(TraceStoreTest, ConcurrentSameKeyWritersLeaveOneValidEntry)
{
    ScratchDir scratch("mmxdsp_store_writers_test");
    service::TraceStore store(storeOpts(scratch));
    trace::MaterializedTrace mat = syntheticTrace(7, 0xabc, 800);

    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t)
        writers.emplace_back([&] {
            for (int i = 0; i < 25; ++i)
                EXPECT_TRUE(store.store("synth", "c", 0xabc, mat));
        });
    for (auto &w : writers)
        w.join();

    // Rename-on-publish: exactly one live entry, no temp litter.
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_TRUE(filesContaining(scratch.path, ".tmp.").empty());
    auto loaded = store.load("synth", "c", 0xabc);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->replayProfile().cycles, mat.replayProfile().cycles);
}

// ---------------- QueryEngine ----------------

service::EngineOptions
engineOpts(const ScratchDir &scratch)
{
    service::EngineOptions opts;
    opts.store.root = (scratch.path / "store").string();
    opts.suite = tinyConfig();
    return opts;
}

TEST(QueryEngineTest, RepeatQueryIsServedFromResultCache)
{
    ScratchDir scratch("mmxdsp_engine_cache_test");
    service::QueryEngine engine(engineOpts(scratch));

    service::Query q{"fir", "c", sim::MachineConfig{}};
    const service::QueryResult first = engine.query(q);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_TRUE(first.trace_captured);
    EXPECT_FALSE(first.from_result_cache);

    const service::QueryResult again = engine.query(q);
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.from_result_cache);
    EXPECT_FALSE(again.trace_captured);
    EXPECT_EQ(again.profile.cycles, first.profile.cycles);
    EXPECT_EQ(engine.stats().result_hits, 1u);

    // A different machine on the same trace replays, not re-captures.
    service::Query p6 = q;
    p6.machine.model = sim::ModelKind::P6;
    const service::QueryResult other = engine.query(p6);
    ASSERT_TRUE(other.ok);
    EXPECT_FALSE(other.from_result_cache);
    EXPECT_FALSE(other.trace_captured);
    EXPECT_EQ(engine.stats().captures, 1u);
}

TEST(QueryEngineTest, BatchMatchesStoreReplayExactly)
{
    // The batch path answers misses through one packed replaySweep per
    // trace; every lane must be bit-identical to a scalar
    // replayProfile over the same stored bytes.
    ScratchDir scratch("mmxdsp_engine_batch_test");
    service::EngineOptions opts = engineOpts(scratch);
    service::QueryEngine engine(opts);

    std::vector<sim::MachineConfig> machines(4);
    machines[1].model = sim::ModelKind::P6;
    machines[2].timer.l1.size_bytes = 8 * 1024;
    machines[3].timer.penalties.l2_miss = 11;

    std::vector<service::Query> queries;
    for (const auto &m : machines)
        queries.push_back({"fir", "mmx", m});
    queries.push_back(queries[0]); // duplicate rides the cache

    const auto results = engine.queryBatch(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(results[4].profile.cycles, results[0].profile.cycles);

    // Independent scalar oracle over the same stored trace.
    service::TraceStore oracle(opts.store);
    auto mat = oracle.load("fir", "mmx", opts.suite.hash());
    ASSERT_NE(mat, nullptr);
    for (size_t i = 0; i < machines.size(); ++i) {
        const profile::ProfileResult expect =
            mat->replayProfile(machines[i]);
        EXPECT_EQ(results[i].profile.cycles, expect.cycles) << i;
        EXPECT_EQ(results[i].profile.timer.memPenaltyCycles,
                  expect.timer.memPenaltyCycles)
            << i;
        EXPECT_EQ(results[i].profile.btb.mispredicts,
                  expect.btb.mispredicts)
            << i;
    }
}

TEST(QueryEngineTest, ColdRestartServesWithoutCapture)
{
    ScratchDir scratch("mmxdsp_engine_restart_test");
    service::EngineOptions opts = engineOpts(scratch);
    uint64_t expect_cycles = 0;
    {
        service::QueryEngine warm(opts);
        const auto r =
            warm.query({"fir", "c", sim::MachineConfig{}});
        ASSERT_TRUE(r.ok) << r.error;
        expect_cycles = r.profile.cycles;
    }

    // A fresh engine with capture disabled can only serve from disk.
    service::EngineOptions cold = opts;
    cold.allow_capture = false;
    service::QueryEngine engine(cold);
    const auto r = engine.query({"fir", "c", sim::MachineConfig{}});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.trace_captured);
    EXPECT_EQ(r.profile.cycles, expect_cycles);
    EXPECT_EQ(engine.stats().captures, 0u);
    EXPECT_EQ(engine.stats().store_loads, 1u);
    EXPECT_EQ(engine.store().stats().v2_hits, 1u);

    // A pair absent from the store must fail, not fatal.
    const auto miss =
        engine.query({"fft", "c", sim::MachineConfig{}});
    EXPECT_FALSE(miss.ok);
    EXPECT_FALSE(miss.error.empty());
}

TEST(QueryEngineTest, ParseQueryLineAcceptsAndRejects)
{
    service::Query q;
    std::string error;

    ASSERT_TRUE(service::QueryEngine::parseQueryLine("fir c", &q, &error));
    EXPECT_EQ(q.benchmark, "fir");
    EXPECT_EQ(q.version, "c");
    EXPECT_EQ(q.machine.model, sim::ModelKind::P5);

    ASSERT_TRUE(service::QueryEngine::parseQueryLine(
        "fft mmx model=p6 l1=8192 l1_ways=4 btb=128 mp=5", &q, &error));
    EXPECT_EQ(q.machine.model, sim::ModelKind::P6);
    EXPECT_EQ(q.machine.timer.l1.size_bytes, 8192u);
    EXPECT_EQ(q.machine.timer.l1.ways, 4u);
    EXPECT_EQ(q.machine.timer.btb_entries, 128u);
    EXPECT_EQ(q.machine.timer.mispredict_penalty, 5u);

    const char *bad[] = {
        "",                      // empty
        "fir",                   // missing version
        "fir c model=p7",        // unknown model
        "fir c l1=zero",         // unparsable value
        "fir c l1=0",            // zero geometry
        "fir c bogus=1",         // unknown key
        "nosuch c",              // unknown pair (would fatal in harness)
        "fir nosuchversion",     // unknown pair
    };
    for (const char *line : bad) {
        EXPECT_FALSE(
            service::QueryEngine::parseQueryLine(line, &q, &error))
            << line;
        EXPECT_FALSE(error.empty()) << line;
    }

    // The port model parses too.
    ASSERT_TRUE(service::QueryEngine::parseQueryLine(
        "fft mmx model=p6p", &q, &error));
    EXPECT_EQ(q.machine.model, sim::ModelKind::P6P);

    // The gemm family is registered: all four variants are known pairs.
    for (const char *version : {"c", "c_blocked", "mmx", "mmx_blocked"}) {
        ASSERT_TRUE(service::QueryEngine::parseQueryLine(
            std::string("gemm ") + version, &q, &error))
            << version;
        EXPECT_EQ(q.benchmark, "gemm");
        EXPECT_EQ(q.version, version);
    }

    // Distinct machines hash apart; identical machines hash together.
    sim::MachineConfig a, b;
    EXPECT_EQ(service::machineHash(a), service::machineHash(b));
    b.timer.penalties.l2_miss += 1;
    EXPECT_NE(service::machineHash(a), service::machineHash(b));
    b = a;
    b.model = sim::ModelKind::P6;
    EXPECT_NE(service::machineHash(a), service::machineHash(b));
    b.model = sim::ModelKind::P6P;
    EXPECT_NE(service::machineHash(a), service::machineHash(b));
    // Same model, different port-model knob: still apart.
    a = b;
    b.timer.p6p.window += 1;
    EXPECT_NE(service::machineHash(a), service::machineHash(b));
}

TEST(QueryEngineTest, P6AndP6PNeverAliasInTheResultCache)
{
    // p6 and p6p queries share every TimerConfig byte; only the model
    // kind differs. The result cache must keep them apart: a p6p query
    // after a p6 one replays, and repeats hit their own entries.
    ScratchDir scratch("mmxdsp_engine_p6p_alias_test");
    service::QueryEngine engine(engineOpts(scratch));

    service::Query p6{"fir", "mmx", sim::MachineConfig{}};
    p6.machine.model = sim::ModelKind::P6;
    service::Query p6p = p6;
    p6p.machine.model = sim::ModelKind::P6P;

    const auto first = engine.query(p6);
    ASSERT_TRUE(first.ok) << first.error;
    const auto second = engine.query(p6p);
    ASSERT_TRUE(second.ok) << second.error;
    // Served fresh, not from the p6 entry, and with the port model's
    // deeper mispredict penalty visible in the cycle count.
    EXPECT_FALSE(second.from_result_cache);
    EXPECT_NE(second.profile.cycles, first.profile.cycles);

    const auto p6_again = engine.query(p6);
    ASSERT_TRUE(p6_again.ok);
    EXPECT_TRUE(p6_again.from_result_cache);
    EXPECT_EQ(p6_again.profile.cycles, first.profile.cycles);
    const auto p6p_again = engine.query(p6p);
    ASSERT_TRUE(p6p_again.ok);
    EXPECT_TRUE(p6p_again.from_result_cache);
    EXPECT_EQ(p6p_again.profile.cycles, second.profile.cycles);
    EXPECT_EQ(engine.stats().result_hits, 2u);

    // Both models in one batch stay distinct as well.
    const auto batch = engine.queryBatch({p6, p6p});
    ASSERT_EQ(batch.size(), 2u);
    ASSERT_TRUE(batch[0].ok);
    ASSERT_TRUE(batch[1].ok);
    EXPECT_EQ(batch[0].profile.cycles, first.profile.cycles);
    EXPECT_EQ(batch[1].profile.cycles, second.profile.cycles);
}

} // namespace
} // namespace mmxdsp
