/**
 * @file
 * Regenerates the paper's Table 2: benchmark instruction characteristics
 * (static instructions, dynamic micro-ops, dynamic instructions, % memory
 * references, % MMX instructions) for every benchmark version, printed
 * side by side with the paper's published values.
 *
 * Absolute counts differ from the paper's (their workload sizes and the
 * IJG/Intel binaries are not reproducible); the comparison targets are
 * the within-benchmark relationships, which Table 3 expresses as ratios.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();
    harness::runAllTimed(suite, opts.threads);

    Table table({"Program", "Static", "Dyn uops", "Dyn instrs", "%Mem",
                 "%MMX", "| paper:", "Static", "Dyn uops", "Dyn instrs",
                 "%Mem", "%MMX"});

    std::string last_bench;
    for (const auto &[bench, version] : BenchmarkSuite::allRuns()) {
        if (!last_bench.empty() && bench != last_bench)
            table.addSeparator();
        last_bench = bench;

        const harness::RunResult &r = suite.run(bench, version);
        const auto &p = r.profile;
        const harness::PaperTable2Row *paper =
            harness::paperTable2For(r.name());

        std::vector<std::string> row{
            r.name(),
            Table::fmtCount(static_cast<int64_t>(p.staticInstructions)),
            Table::fmtCount(static_cast<int64_t>(p.uops)),
            Table::fmtCount(static_cast<int64_t>(p.dynamicInstructions)),
            Table::fmtPercent(p.pctMemoryReferences()),
            version == "c" || version == "fp"
                ? std::string("-")
                : Table::fmtPercent(p.pctMmx()),
            "|",
        };
        if (paper) {
            row.push_back(Table::fmtCount(paper->staticInstrs));
            row.push_back(Table::fmtCount(paper->dynamicUops));
            row.push_back(Table::fmtCount(paper->dynamicInstrs));
            row.push_back(Table::fmtFixed(paper->pctMemoryRefs, 2) + "%");
            row.push_back(paper->pctMmx < 0
                              ? std::string("-")
                              : Table::fmtFixed(paper->pctMmx, 2) + "%");
        } else {
            for (int i = 0; i < 5; ++i)
                row.emplace_back("n/a");
        }
        table.addRow(std::move(row));
    }

    std::printf("Table 2: benchmark instruction characteristics "
                "(measured | paper)\n\n");
    table.print();
    std::printf("\nWorkloads: fft %d-pt, fir %d samples/35 taps, iir %d "
                "samples/8th-order, matvec %dx%d,\n"
                "jpeg %dx%d q%d, image %dx%d, g722 %d samples, radar %d "
                "echoes x 12 ranges.\n",
                suite.config().fft_size, suite.config().fir_samples,
                suite.config().iir_samples, suite.config().matvec_dim,
                suite.config().matvec_dim, suite.config().jpeg_width,
                suite.config().jpeg_height, suite.config().jpeg_quality,
                suite.config().image_width, suite.config().image_height,
                suite.config().g722_samples, suite.config().radar_echoes);
    return 0;
}
