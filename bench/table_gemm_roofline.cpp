/**
 * @file
 * Roofline-style characterization of the blocked GEMM family: one
 * materialized trace per (variant, matrix size, block size), each
 * replayed through the config-parallel packed sweep kernel across a
 * block-size-encoded workload grid x the ablation_cache_sweep L1/L2
 * geometry set x all three machine models. Reports cycles/MAC against
 * arithmetic intensity (MACs per byte of L1 refill traffic) so the
 * table shows, per machine, where each blocking falls off the cache
 * cliff — the Aberdeen & Baxter question asked of the paper's models.
 *
 * Gates (exit nonzero on violation):
 *  - packed-sweep results bit-identical to the scalar reference sweep
 *    at the paper geometry on all three models, for every gemm trace;
 *  - blocked-MMX beats naive-scalar in simulated cycles on every model
 *    at the paper geometry (with the best swept block size).
 *
 * Writes BENCH_gemm.json for CI artifact upload. --sizes= and
 * --blocks= override the swept matrix and block sizes.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "profile/vprof.hh"
#include "sim/timing_model.hh"
#include "support/table.hh"
#include "trace/materialize.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

namespace {

/** The swept geometries: the ablation_cache_sweep L1 axis over the
 *  paper's 512KB L2, plus the L2 axis at the paper's 16KB L1. The
 *  paper machine (16KB/512KB) is a member of both axes — dedup below
 *  keeps one copy. */
std::vector<sim::TimerConfig>
makeGeometries()
{
    std::vector<sim::TimerConfig> geo;
    auto add = [&geo](uint32_t l1_kb, uint32_t l2_kb) {
        sim::TimerConfig config;
        config.l1.size_bytes = l1_kb * 1024;
        config.l2.size_bytes = l2_kb * 1024;
        for (const sim::TimerConfig &have : geo)
            if (have.l1.size_bytes == config.l1.size_bytes
                && have.l2.size_bytes == config.l2.size_bytes)
                return;
        geo.push_back(config);
    };
    for (uint32_t l1_kb : {4, 8, 16, 32, 64})
        add(l1_kb, 512);
    for (uint32_t l2_kb : {128, 512, 2048})
        add(16, l2_kb);
    return geo;
}

bool
sameResult(const profile::ProfileResult &a, const profile::ProfileResult &b)
{
    return a.cycles == b.cycles
           && a.dynamicInstructions == b.dynamicInstructions
           && a.uops == b.uops && a.memoryReferences == b.memoryReferences
           && a.opCounts == b.opCounts && a.l1.misses == b.l1.misses
           && a.l2.misses == b.l2.misses
           && a.btb.mispredicts == b.btb.mispredicts
           && a.timer.pairs == b.timer.pairs
           && a.timer.uopsIssued == b.timer.uopsIssued
           && a.timer.retireStallCycles == b.timer.retireStallCycles
           && a.timer.portStallCycles == b.timer.portStallCycles;
}

struct Lane
{
    std::string variant;
    int size = 0;
    int block = 0; ///< 0 for the block-independent naive variants
    sim::ModelKind model;
    uint32_t l1_kb = 0;
    uint32_t l2_kb = 0;
    uint64_t cycles = 0;
    uint64_t l1_misses = 0;
    double cycles_per_mac = 0.0;
    double intensity = 0.0; ///< MACs per byte of L1 refill traffic
};

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);

    const harness::SuiteConfig base = opts.suiteConfig();
    std::vector<int> sizes =
        opts.sizes.empty() ? std::vector<int>{base.gemm_dim} : opts.sizes;
    // Default blocks bracket the workload's block size so the sweep
    // crosses the L1 boundary at any --scale.
    std::vector<int> blocks = opts.blocks;
    if (blocks.empty())
        blocks = {std::max(4, base.gemm_block / 2), base.gemm_block,
                  base.gemm_block + base.gemm_block / 2};

    const std::vector<sim::TimerConfig> geometries = makeGeometries();
    const sim::ModelKind kinds[] = {sim::ModelKind::P5, sim::ModelKind::P6,
                                    sim::ModelKind::P6P};
    std::vector<sim::MachineConfig> machines;
    for (const sim::ModelKind kind : kinds)
        for (const sim::TimerConfig &geo : geometries)
            machines.push_back(sim::MachineConfig{kind, geo});

    // The identity-gate subset: the paper geometry on each model
    // (l1=16KB/l2=512KB is geometries[2] by construction — assert it).
    std::vector<size_t> gate_lanes;
    for (size_t m = 0; m < machines.size(); ++m)
        if (machines[m].timer.l1.size_bytes == 16 * 1024
            && machines[m].timer.l2.size_bytes == 512 * 1024)
            gate_lanes.push_back(m);
    if (gate_lanes.size() != 3) {
        std::fprintf(stderr, "FAIL: paper geometry missing from grid\n");
        return 1;
    }

    bool identical = true;
    bool perf_ok = true;
    std::vector<Lane> lanes;
    // cycles at the paper geometry, for the perf gate:
    // [model][variant-key] -> cycles.
    struct PaperCycles
    {
        uint64_t naive_scalar = 0;
        uint64_t best_blocked_mmx = 0;
    };

    for (const int size : sizes) {
        // One suite per block size: the block is a workload parameter
        // (it changes the instruction stream), so each block gets its
        // own config hash and captured trace. The naive variants are
        // block-independent and are materialized from the first suite
        // only.
        std::vector<std::unique_ptr<BenchmarkSuite>> suites;
        for (const int block : blocks) {
            harness::SuiteConfig config = base;
            config.gemm_dim = size;
            config.gemm_block = block;
            suites.push_back(std::make_unique<BenchmarkSuite>(
                config, opts.traceOptions(), opts.machineConfig()));
        }
        const uint64_t macs = static_cast<uint64_t>(size)
                              * static_cast<uint64_t>(size)
                              * static_cast<uint64_t>(size);

        struct Job
        {
            const char *variant;
            int block; ///< 0 = block-independent
            BenchmarkSuite *suite;
        };
        std::vector<Job> jobs = {
            {"c", 0, suites.front().get()},
            {"mmx", 0, suites.front().get()},
        };
        for (size_t b = 0; b < blocks.size(); ++b) {
            jobs.push_back({"c_blocked", blocks[b], suites[b].get()});
            jobs.push_back({"mmx_blocked", blocks[b], suites[b].get()});
        }

        PaperCycles paper[3];
        for (const Job &job : jobs) {
            auto mat = job.suite->materializedFor("gemm", job.variant);
            const std::vector<profile::ProfileResult> swept =
                mat->replaySweepPacked(machines, opts.threads);

            // Identity gate: the packed lanes at the paper geometry
            // must be bit-identical to the scalar reference sweep.
            std::vector<sim::MachineConfig> gate_machines;
            for (const size_t m : gate_lanes)
                gate_machines.push_back(machines[m]);
            const std::vector<profile::ProfileResult> golden =
                mat->replaySweepScalar(gate_machines, opts.threads);
            for (size_t g = 0; g < gate_lanes.size(); ++g) {
                if (!sameResult(swept[gate_lanes[g]], golden[g])) {
                    std::fprintf(
                        stderr,
                        "FAIL: gemm.%s (dim %d block %d) packed sweep "
                        "diverged from scalar reference on %s\n",
                        job.variant, size, job.block,
                        sim::modelName(machines[gate_lanes[g]].model));
                    identical = false;
                }
            }

            for (size_t m = 0; m < machines.size(); ++m) {
                const profile::ProfileResult &p = swept[m];
                Lane lane;
                lane.variant = job.variant;
                lane.size = size;
                lane.block = job.block;
                lane.model = machines[m].model;
                lane.l1_kb = machines[m].timer.l1.size_bytes / 1024;
                lane.l2_kb = machines[m].timer.l2.size_bytes / 1024;
                lane.cycles = p.cycles;
                lane.l1_misses = p.l1.misses;
                lane.cycles_per_mac =
                    static_cast<double>(p.cycles) / static_cast<double>(macs);
                const uint64_t bytes = p.l1.misses
                                       * machines[m].timer.l1.line_bytes;
                lane.intensity = bytes ? static_cast<double>(macs)
                                             / static_cast<double>(bytes)
                                       : 0.0;
                lanes.push_back(std::move(lane));
            }

            // Collect the paper-geometry cycles for the perf gate.
            for (size_t g = 0; g < gate_lanes.size(); ++g) {
                const uint64_t cycles = swept[gate_lanes[g]].cycles;
                PaperCycles &pc = paper[g];
                if (std::string(job.variant) == "c")
                    pc.naive_scalar = cycles;
                else if (std::string(job.variant) == "mmx_blocked")
                    pc.best_blocked_mmx =
                        pc.best_blocked_mmx
                            ? std::min(pc.best_blocked_mmx, cycles)
                            : cycles;
            }
        }

        // Perf gate: blocked-MMX (best block) beats naive-scalar on
        // every model at the paper geometry.
        for (size_t g = 0; g < 3; ++g) {
            if (paper[g].best_blocked_mmx >= paper[g].naive_scalar) {
                std::fprintf(
                    stderr,
                    "FAIL: gemm dim %d: blocked MMX (%llu cycles) does "
                    "not beat naive scalar (%llu cycles) on %s\n",
                    size,
                    static_cast<unsigned long long>(
                        paper[g].best_blocked_mmx),
                    static_cast<unsigned long long>(paper[g].naive_scalar),
                    sim::modelName(machines[gate_lanes[g]].model));
                perf_ok = false;
            }
        }
    }

    // One compact table per model: cycles/MAC across the L1 axis (at
    // the paper's 512KB L2) plus intensity at the paper geometry.
    for (const sim::ModelKind kind : kinds) {
        std::printf("%s: cycles/MAC by L1 size (L2 512KB)\n\n",
                    sim::modelName(kind));
        Table table({"variant", "dim", "block", "L1 4K", "L1 8K", "L1 16K",
                     "L1 32K", "L1 64K", "MACs/byte@16K"});
        for (const int size : sizes) {
            for (const auto &[variant, block] :
                 [&]() {
                     std::vector<std::pair<std::string, int>> keys = {
                         {"c", 0}, {"mmx", 0}};
                     for (const int b : blocks) {
                         keys.emplace_back("c_blocked", b);
                         keys.emplace_back("mmx_blocked", b);
                     }
                     return keys;
                 }()) {
                std::vector<std::string> row = {
                    variant, std::to_string(size),
                    block ? std::to_string(block) : "-"};
                double intensity = 0.0;
                for (const uint32_t l1_kb : {4u, 8u, 16u, 32u, 64u}) {
                    for (const Lane &lane : lanes) {
                        if (lane.model == kind && lane.variant == variant
                            && lane.size == size && lane.block == block
                            && lane.l1_kb == l1_kb && lane.l2_kb == 512) {
                            row.push_back(
                                Table::fmtFixed(lane.cycles_per_mac, 2));
                            if (l1_kb == 16)
                                intensity = lane.intensity;
                            break;
                        }
                    }
                }
                row.push_back(Table::fmtFixed(intensity, 2));
                table.addRow(row);
            }
        }
        table.print();
        std::printf("\n");
    }
    std::printf("packed sweep bit-identical to scalar reference: %s\n",
                identical ? "yes" : "NO");
    std::printf("blocked MMX beats naive scalar on every model: %s\n",
                perf_ok ? "yes" : "NO");

    std::FILE *json = std::fopen("BENCH_gemm.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"scale\": %d,\n  \"lanes\": [\n",
                     opts.scale);
        for (size_t i = 0; i < lanes.size(); ++i) {
            const Lane &lane = lanes[i];
            std::fprintf(
                json,
                "    {\"variant\": \"%s\", \"dim\": %d, \"block\": %d, "
                "\"model\": \"%s\", \"l1_kb\": %u, \"l2_kb\": %u, "
                "\"cycles\": %llu, \"l1_misses\": %llu, "
                "\"cycles_per_mac\": %.4f, "
                "\"intensity_macs_per_byte\": %.4f}%s\n",
                lane.variant.c_str(), lane.size, lane.block,
                sim::modelName(lane.model), lane.l1_kb, lane.l2_kb,
                static_cast<unsigned long long>(lane.cycles),
                static_cast<unsigned long long>(lane.l1_misses),
                lane.cycles_per_mac, lane.intensity,
                i + 1 < lanes.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n  \"identical\": %s,\n"
                     "  \"blocked_mmx_beats_naive_scalar\": %s\n}\n",
                     identical ? "true" : "false",
                     perf_ok ? "true" : "false");
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_gemm.json\n");
    }

    return identical && perf_ok ? 0 : 1;
}
