/**
 * @file
 * Microbenchmark and regression gate for the MMX fast paths:
 *
 *  - op layer: every mmx:: binop and shift timed through the scalar
 *    lane-loop golden reference and through the active dispatch path
 *    (SWAR or host SSE2), reported as Mops/sec plus geomean speedup;
 *  - live capture: an MMX micro kernel captured into a TraceWriter
 *    three ways — the pre-change cost model (scalar semantics plus one
 *    virtual TraceSink::onInstr per instruction), the real runtime with
 *    the block buffer disabled (setEmitBatch(1)), and the real runtime
 *    with the default 512-event blocks.
 *
 * Verifies that the batched and per-instruction captures serialize to
 * byte-identical trace images, writes BENCH_mmx_swar.json, and (in
 * Release builds on a fast path) exits nonzero unless the op-layer
 * geomean beats scalar and batched live capture beats the pre-change
 * model by at least 1.5x — so CI can run it as a perf smoke test.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/event.hh"
#include "mmx/mmx_ops.hh"
#include "runtime/cpu.hh"
#include "sim/trace_sink.hh"
#include "support/rng.hh"
#include "support/table.hh"
#include "trace/format.hh"
#include "trace/writer.hh"

using namespace mmxdsp;
using mmx::MmxReg;

namespace {

constexpr int kRepetitions = 3;
constexpr uint64_t kOpIters = 1u << 20;
constexpr size_t kBufSize = 4096; // power of two
constexpr int kKernelIters = 1 << 17;

#if defined(MMXDSP_FORCE_SCALAR_MMX)
constexpr const char *kActivePath = "scalar (forced)";
#elif defined(MMXDSP_MMX_HAVE_HOST_SIMD)
constexpr const char *kActivePath = "host-sse2";
#else
constexpr const char *kActivePath = "swar";
#endif

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <class F>
double
bestOf(F &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        body();
        const double dt = now() - t0;
        if (!rep || dt < best)
            best = dt;
    }
    return best;
}

/** Defeats dead-code elimination of the timed op loops. */
volatile uint64_t g_sinkBits = 0;

struct OpRow
{
    const char *name;
    double scalarMops;
    double fastMops;
};

/** Time every binop and shift: scalar reference vs active dispatch. */
std::vector<OpRow>
benchOps(const std::vector<MmxReg> &a, const std::vector<MmxReg> &b)
{
    std::vector<OpRow> rows;
    const size_t mask = kBufSize - 1;
    const double iters = static_cast<double>(kOpIters);

#define MMXDSP_X(op_name, op_enum)                                           \
    {                                                                        \
        uint64_t acc = 0;                                                    \
        const double ts = bestOf([&] {                                       \
            for (uint64_t i = 0; i < kOpIters; ++i)                          \
                acc ^= mmx::scalar::op_name(a[i & mask], b[i & mask]).bits;  \
        });                                                                  \
        const double tf = bestOf([&] {                                       \
            for (uint64_t i = 0; i < kOpIters; ++i)                          \
                acc ^= mmx::op_name(a[i & mask], b[i & mask]).bits;          \
        });                                                                  \
        g_sinkBits = g_sinkBits + acc;                                       \
        rows.push_back({#op_name, iters / ts / 1e6, iters / tf / 1e6});      \
    }
    MMXDSP_MMX_BINOP_LIST(MMXDSP_X)
#undef MMXDSP_X

#define MMXDSP_X(op_name, op_enum)                                           \
    {                                                                        \
        uint64_t acc = 0;                                                    \
        const double ts = bestOf([&] {                                       \
            for (uint64_t i = 0; i < kOpIters; ++i)                          \
                acc ^= mmx::scalar::op_name(a[i & mask],                     \
                                            static_cast<unsigned>(i & 15))   \
                           .bits;                                            \
        });                                                                  \
        const double tf = bestOf([&] {                                       \
            for (uint64_t i = 0; i < kOpIters; ++i)                          \
                acc ^= mmx::op_name(a[i & mask],                             \
                                    static_cast<unsigned>(i & 15))           \
                           .bits;                                            \
        });                                                                  \
        g_sinkBits = g_sinkBits + acc;                                       \
        rows.push_back({#op_name, iters / ts / 1e6, iters / tf / 1e6});      \
    }
    MMXDSP_MMX_SHIFT_LIST(MMXDSP_X)
#undef MMXDSP_X

    return rows;
}

double
geomeanSpeedup(const std::vector<OpRow> &rows)
{
    double logSum = 0.0;
    for (const OpRow &r : rows)
        logSum += std::log(r.fastMops / r.scalarMops);
    return std::exp(logSum / static_cast<double>(rows.size()));
}

// ---------------- live-capture arms ----------------

/**
 * The measured MMX micro kernel, driven through the real runtime:
 * eight events per iteration (load, pmaddwd, paddsw, psraw, paddd,
 * packssdw, store, jcc) plus one coefficient load up front.
 */
void
cpuMicroKernel(runtime::Cpu &cpu, const int16_t *src, const int16_t *coef,
               int16_t *dst, int iters)
{
    using runtime::M64;
    M64 k = cpu.movqLoad(coef);
    for (int i = 0; i < iters; ++i) {
        const int off = (i & 255) * 4;
        M64 a = cpu.movqLoad(src + off);
        M64 m = cpu.pmaddwd(a, k);
        M64 s = cpu.paddsw(a, k);
        M64 t = cpu.psraw(s, 2);
        M64 u = cpu.paddd(m, m);
        M64 v = cpu.packssdw(u, t);
        cpu.movqStore(dst + off, v);
        cpu.jcc(i + 1 < iters);
    }
}

// The "legacy" arm freezes the pre-change capture path so the gate keeps
// measuring against it after the production code moves on. Per event the
// seed paid: a lane-loop scalar op, a source-location hash lookup in the
// process-global site table, an InstrEvent build, one virtual
// TraceSink::onInstr dispatch, and an encode whose seen-site tracking
// was a std::set insert. The three clones below replicate each of those
// costs verbatim (same key, same hash, same record layout).

/** Clone of the seed runtime's SiteTable lookup (same key and hash). */
class LegacySiteTable
{
  public:
    uint32_t
    idFor(const std::source_location &loc)
    {
        Key key{loc.file_name(), loc.line(), loc.column()};
        auto it = ids_.find(key);
        if (it != ids_.end())
            return it->second;
        const uint32_t id = next_++;
        ids_.emplace(key, id);
        return id;
    }

  private:
    struct Key
    {
        const char *file;
        uint32_t line;
        uint32_t column;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            size_t h = std::hash<const void *>()(k.file);
            h = h * 1315423911u + k.line;
            h = h * 1315423911u + k.column;
            return h;
        }
    };
    std::unordered_map<Key, uint32_t, KeyHash> ids_;
    uint32_t next_ = 0;
};

/** Clone of the seed TraceWriter's per-event encode (incl. the ordered
 *  std::set seen-site insert the optimized writer no longer does). */
class LegacyWriter final : public sim::TraceSink
{
  public:
    LegacyWriter() { body_.reserve(1 << 16); }

    void
    onInstr(const isa::InstrEvent &event) override
    {
        uint64_t mask = 0;
        if (isa::tagValid(event.src0))
            mask |= 1;
        if (isa::tagValid(event.src1))
            mask |= 2;
        if (isa::tagValid(event.dst))
            mask |= 4;

        const uint64_t packed = (static_cast<uint64_t>(event.op) << 6)
                                | (mask << 3)
                                | (static_cast<uint64_t>(event.mem) << 1)
                                | (event.taken ? 1 : 0);
        trace::putVarint(body_, trace::kRecInstrBase + packed);

        trace::putVarint(body_,
                         trace::zigzag(static_cast<int64_t>(event.site)
                                       - static_cast<int64_t>(prevSite_)));
        prevSite_ = event.site;

        if (event.mem != isa::MemMode::None) {
            trace::putVarint(body_, trace::zigzag(static_cast<int64_t>(
                                        event.addr - prevAddr_)));
            prevAddr_ = event.addr;
            trace::putVarint(body_, event.size);
        }

        if (mask & 1)
            body_.push_back(event.src0);
        if (mask & 2)
            body_.push_back(event.src1);
        if (mask & 4)
            body_.push_back(event.dst);

        sites_.insert(event.site);
        ++instrCount_;
    }

    uint64_t instrCount() const { return instrCount_; }

  private:
    std::vector<uint8_t> body_;
    uint64_t instrCount_ = 0;
    uint32_t prevSite_ = 0;
    uint64_t prevAddr_ = 0;
    std::set<uint32_t> sites_;
};

/** The micro kernel under the full pre-change cost model. */
void
legacyMicroKernel(sim::TraceSink *sink, LegacySiteTable &sites,
                  const int16_t *src, const int16_t *coef, int16_t *dst,
                  int iters)
{
    auto emit = [&](isa::Op op, isa::MemMode mem, const void *addr,
                    uint8_t size, bool taken,
                    std::source_location loc =
                        std::source_location::current()) {
        isa::InstrEvent e;
        e.op = op;
        e.mem = mem;
        e.addr = reinterpret_cast<uint64_t>(addr);
        e.size = size;
        e.site = sites.idFor(loc);
        e.src0 = isa::makeTag(isa::RegClass::Mmx, 1);
        e.src1 = isa::makeTag(isa::RegClass::Mmx, 2);
        e.dst = isa::makeTag(isa::RegClass::Mmx, 3);
        e.taken = taken;
        sink->onInstr(e);
    };

    namespace ref = mmx::scalar;
    MmxReg k = MmxReg::load(coef);
    emit(isa::Op::Movq, isa::MemMode::Load, coef, 8, false);
    for (int i = 0; i < iters; ++i) {
        const int off = (i & 255) * 4;
        MmxReg a = MmxReg::load(src + off);
        emit(isa::Op::Movq, isa::MemMode::Load, src + off, 8, false);
        MmxReg m = ref::pmaddwd(a, k);
        emit(isa::Op::Pmaddwd, isa::MemMode::None, nullptr, 0, false);
        MmxReg s = ref::paddsw(a, k);
        emit(isa::Op::Paddsw, isa::MemMode::None, nullptr, 0, false);
        MmxReg t = ref::psraw(s, 2);
        emit(isa::Op::Psraw, isa::MemMode::None, nullptr, 0, false);
        MmxReg u = ref::paddd(m, m);
        emit(isa::Op::Paddd, isa::MemMode::None, nullptr, 0, false);
        MmxReg v = ref::packssdw(u, t);
        emit(isa::Op::Packssdw, isa::MemMode::None, nullptr, 0, false);
        v.store(dst + off);
        emit(isa::Op::Movq, isa::MemMode::Store, dst + off, 8, false);
        emit(isa::Op::Jcc, isa::MemMode::None, nullptr, 0, i + 1 < iters);
    }
}

struct CaptureArm
{
    double seconds = 0.0;
    uint64_t events = 0;
    std::vector<uint8_t> image; ///< serialized trace from the last rep
};

/**
 * Capture the Cpu-driven kernel with the given emit block size. The
 * timed region is attach -> run -> detach: the per-event emit+encode
 * path this PR changes. finish()/serialize() (one-shot per capture,
 * identical before and after) run outside the clock but still feed the
 * byte-identity gate.
 */
CaptureArm
captureWithCpu(uint32_t batch, const int16_t *src, const int16_t *coef,
               int16_t *dst)
{
    CaptureArm arm;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        runtime::Cpu cpu; // fresh register round-robin state per rep
        cpu.setEmitBatch(batch);
        trace::TraceWriter writer("micro_mmx", "mmx", 1);
        cpu.attachSink(&writer);
        const double t0 = now();
        cpuMicroKernel(cpu, src, coef, dst, kKernelIters);
        cpu.attachSink(nullptr); // tail flush is part of the capture
        const double dt = now() - t0;
        if (!rep || dt < arm.seconds)
            arm.seconds = dt;
        writer.finish();
        arm.events = writer.instrCount();
        arm.image = writer.serialize();
    }
    return arm;
}

} // namespace

int
main()
{
    // -- part 1: op-layer throughput --
    Rng rng(0xb0a710ad);
    std::vector<MmxReg> a;
    std::vector<MmxReg> b;
    for (size_t i = 0; i < kBufSize; ++i) {
        a.push_back(MmxReg(rng.next()));
        b.push_back(MmxReg(rng.next()));
    }

    std::printf("mmx op throughput — scalar reference vs %s, %llu iters\n\n",
                kActivePath, static_cast<unsigned long long>(kOpIters));
    const std::vector<OpRow> rows = benchOps(a, b);
    Table opsTable({"op", "scalar Mops/s", "fast Mops/s", "speedup"});
    for (const OpRow &r : rows)
        opsTable.addRow({r.name, Table::fmtFixed(r.scalarMops, 1),
                         Table::fmtFixed(r.fastMops, 1),
                         Table::fmtRatio(r.fastMops / r.scalarMops)});
    opsTable.print();
    const double geomean = geomeanSpeedup(rows);
    std::printf("\ngeomean op speedup    %.2fx\n\n", geomean);

    // -- part 2: live-capture throughput --
    std::vector<int16_t> src(1024);
    std::vector<int16_t> coef(4);
    std::vector<int16_t> dst(1024);
    for (int16_t &v : src)
        v = static_cast<int16_t>(rng.next());
    for (int16_t &v : coef)
        v = static_cast<int16_t>(rng.next());

    CaptureArm legacy;
    LegacySiteTable legacySites; // process-global in the seed: lives on
    legacy.seconds = bestOf([&] {
        LegacyWriter writer;
        sim::TraceSink *sink = &writer; // force virtual dispatch
        legacyMicroKernel(sink, legacySites, src.data(), coef.data(),
                          dst.data(), kKernelIters);
        legacy.events = writer.instrCount();
    });

    CaptureArm perInstr =
        captureWithCpu(1, src.data(), coef.data(), dst.data());
    CaptureArm batched = captureWithCpu(runtime::Cpu::kEmitBatch, src.data(),
                                        coef.data(), dst.data());

    const bool identical = perInstr.image == batched.image;
    auto eps = [](double seconds, uint64_t events) {
        return static_cast<double>(events) / seconds;
    };
    const double speedupVsLegacy = legacy.seconds / batched.seconds;
    const double speedupVsPerInstr = perInstr.seconds / batched.seconds;

    std::printf("live capture — %llu events into a TraceWriter\n\n",
                static_cast<unsigned long long>(batched.events));
    Table capTable({"arm", "capture ms", "events/sec"});
    capTable.addRow({"legacy (scalar + per-instr emit)",
                     Table::fmtFixed(legacy.seconds * 1e3, 2),
                     Table::fmtCount(static_cast<int64_t>(
                         eps(legacy.seconds, legacy.events)))});
    capTable.addRow({"cpu, batch=1",
                     Table::fmtFixed(perInstr.seconds * 1e3, 2),
                     Table::fmtCount(static_cast<int64_t>(
                         eps(perInstr.seconds, perInstr.events)))});
    capTable.addRow({"cpu, batch=512",
                     Table::fmtFixed(batched.seconds * 1e3, 2),
                     Table::fmtCount(static_cast<int64_t>(
                         eps(batched.seconds, batched.events)))});
    capTable.print();
    std::printf("\ncapture speedup       %.2fx vs legacy, %.2fx vs batch=1\n",
                speedupVsLegacy, speedupVsPerInstr);
    std::printf("traces byte-identical %s\n", identical ? "yes" : "NO");

    std::FILE *json = std::fopen("BENCH_mmx_swar.json", "w");
    if (json) {
        std::fprintf(json,
                     "{\n"
                     "  \"active_path\": \"%s\",\n"
                     "  \"op_iters\": %llu,\n"
                     "  \"repetitions\": %d,\n"
                     "  \"ops\": [\n",
                     kActivePath, static_cast<unsigned long long>(kOpIters),
                     kRepetitions);
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(json,
                         "    {\"name\": \"%s\", \"scalar_mops\": %.1f, "
                         "\"fast_mops\": %.1f}%s\n",
                         rows[i].name, rows[i].scalarMops, rows[i].fastMops,
                         i + 1 < rows.size() ? "," : "");
        std::fprintf(
            json,
            "  ],\n"
            "  \"geomean_op_speedup\": %.3f,\n"
            "  \"live_capture\": {\n"
            "    \"events\": %llu,\n"
            "    \"legacy_seconds\": %.6f,\n"
            "    \"per_instr_seconds\": %.6f,\n"
            "    \"batched_seconds\": %.6f,\n"
            "    \"batched_events_per_sec\": %.0f,\n"
            "    \"speedup_vs_legacy\": %.3f,\n"
            "    \"speedup_vs_per_instr\": %.3f,\n"
            "    \"identical\": %s\n"
            "  }\n"
            "}\n",
            geomean, static_cast<unsigned long long>(batched.events),
            legacy.seconds, perInstr.seconds, batched.seconds,
            eps(batched.seconds, batched.events), speedupVsLegacy,
            speedupVsPerInstr, identical ? "true" : "false");
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_mmx_swar.json\n");
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: batched capture diverged from "
                             "per-instruction capture\n");
        return 1;
    }
#if defined(NDEBUG) && !defined(MMXDSP_FORCE_SCALAR_MMX)
    if (geomean <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: %s op path not faster than scalar "
                     "(geomean %.2fx)\n",
                     kActivePath, geomean);
        return 1;
    }
    if (speedupVsLegacy < 1.5) {
        std::fprintf(stderr,
                     "FAIL: batched live capture below the 1.5x gate vs the "
                     "pre-change model (%.2fx)\n",
                     speedupVsLegacy);
        return 1;
    }
#else
    std::fprintf(stderr, "perf gates skipped (debug or forced-scalar "
                         "build)\n");
#endif
    return 0;
}
