/**
 * @file
 * Google-benchmark microbenchmarks of the MMX functional-emulation layer
 * itself (host-side throughput, not simulated cycles) — useful when
 * optimizing the simulator, since every benchmark instruction funnels
 * through these semantics.
 */

#include <benchmark/benchmark.h>

#include "mmx/mmx_ops.hh"
#include "support/rng.hh"

using namespace mmxdsp;
using mmx::MmxReg;

namespace {

MmxReg
randomReg(Rng &rng)
{
    return MmxReg{rng.next()};
}

void
BM_Paddsw(benchmark::State &state)
{
    Rng rng(1);
    MmxReg a = randomReg(rng);
    MmxReg b = randomReg(rng);
    for (auto _ : state) {
        a = mmx::paddsw(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Paddsw);

void
BM_Pmaddwd(benchmark::State &state)
{
    Rng rng(2);
    MmxReg a = randomReg(rng);
    MmxReg b = randomReg(rng);
    for (auto _ : state) {
        MmxReg r = mmx::pmaddwd(a, b);
        benchmark::DoNotOptimize(r);
        a.bits ^= r.bits;
    }
}
BENCHMARK(BM_Pmaddwd);

void
BM_Packuswb(benchmark::State &state)
{
    Rng rng(3);
    MmxReg a = randomReg(rng);
    MmxReg b = randomReg(rng);
    for (auto _ : state) {
        MmxReg r = mmx::packuswb(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Packuswb);

void
BM_Punpcklbw(benchmark::State &state)
{
    Rng rng(4);
    MmxReg a = randomReg(rng);
    MmxReg b = randomReg(rng);
    for (auto _ : state) {
        MmxReg r = mmx::punpcklbw(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Punpcklbw);

void
BM_Psraw(benchmark::State &state)
{
    Rng rng(5);
    MmxReg a = randomReg(rng);
    for (auto _ : state) {
        MmxReg r = mmx::psraw(a, 3);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Psraw);

/** An emulated 64-element dot product, end to end. */
void
BM_DotProduct64(benchmark::State &state)
{
    Rng rng(6);
    alignas(8) int16_t a[64];
    alignas(8) int16_t b[64];
    for (int i = 0; i < 64; ++i) {
        a[i] = static_cast<int16_t>(rng.nextInRange(-1000, 1000));
        b[i] = static_cast<int16_t>(rng.nextInRange(-1000, 1000));
    }
    for (auto _ : state) {
        MmxReg acc(0);
        for (int i = 0; i < 64; i += 4) {
            MmxReg va = MmxReg::load(a + i);
            MmxReg vb = MmxReg::load(b + i);
            acc = mmx::paddd(acc, mmx::pmaddwd(va, vb));
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_DotProduct64);

} // namespace

BENCHMARK_MAIN();
