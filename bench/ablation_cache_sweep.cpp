/**
 * @file
 * Capture-once / simulate-many demonstration of the trace engine: one
 * recorded execution each of fft.mmx and jpeg.c is replayed through a
 * grid of Pentium memory hierarchies (L1 size x L2 size), reporting
 * cycles and miss rates per configuration without ever re-running the
 * benchmark code. The 16KB/512KB point reproduces the paper's machine
 * (a 200 MHz Pentium with MMX); the rest of the grid shows how far the
 * paper's cycle counts depend on that geometry.
 */

#include <cstdio>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "mem/cache.hh"
#include "sim/pentium_timer.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

namespace {

/** The L1 x L2 grid: every pairing where L2 is strictly larger. */
std::vector<sim::TimerConfig>
makeGrid()
{
    std::vector<sim::TimerConfig> grid;
    for (uint32_t l1_kb : {4, 8, 16, 32, 64}) {
        for (uint32_t l2_kb : {128, 512, 2048}) {
            if (l2_kb <= l1_kb)
                continue;
            sim::TimerConfig config;
            config.l1.size_bytes = l1_kb * 1024;
            config.l2.size_bytes = l2_kb * 1024;
            grid.push_back(config);
        }
    }
    return grid;
}

void
sweepOne(BenchmarkSuite &suite, const char *bench, const char *version,
         int threads)
{
    const std::vector<sim::TimerConfig> grid = makeGrid();
    const std::vector<profile::ProfileResult> results =
        suite.sweep(bench, version, grid, threads);

    std::printf("%s.%s — one trace, %zu machine models\n\n", bench,
                version, grid.size());
    Table table({"L1", "L2", "cycles", "IPC", "L1 miss", "L2 miss",
                 "mem-stall %"});
    uint64_t baseline = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const profile::ProfileResult &p = results[i];
        if (grid[i].l1.size_bytes == 16 * 1024
            && grid[i].l2.size_bytes == 512 * 1024)
            baseline = p.cycles;
        table.addRow(
            {grid[i].l1.describe(), grid[i].l2.describe(),
             Table::fmtCount(static_cast<int64_t>(p.cycles)),
             Table::fmtFixed(p.instructionsPerCycle(), 2),
             Table::fmtPercent(p.l1.missRate(), 2),
             Table::fmtPercent(p.l2.missRate(), 2),
             Table::fmtPercent(
                 p.cycles ? static_cast<double>(p.timer.memPenaltyCycles)
                                / static_cast<double>(p.cycles)
                          : 0.0,
                 1)});
    }
    table.print();
    if (baseline)
        std::printf("\n16KB/512KB is the paper's machine: %llu cycles.\n\n",
                    static_cast<unsigned long long>(baseline));
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();

    std::printf("Ablation: cache-geometry sweep by trace replay\n"
                "(each benchmark executes once; every row below is a "
                "replay of that one trace)\n\n");

    sweepOne(suite, "fft", "mmx", opts.threads);
    sweepOne(suite, "jpeg", "c", opts.threads);

    const BenchmarkSuite::TraceActivity &activity = suite.traceActivity();
    std::fprintf(stderr,
                 "[harness] %d trace(s) captured live, %d loaded from %s\n",
                 activity.captured, activity.disk_hits,
                 suite.traceCache().enabled()
                     ? suite.traceCache().dir().c_str()
                     : "(cache off)");
    return 0;
}
