/**
 * @file
 * Regenerates the paper's Figure 2(b): the same ratios as Figure 2(a)
 * but between the hand-optimized floating-point library versions and
 * the MMX versions — only fft, fir, and iir have .fp versions (matvec
 * is integer data). The MMX versions beat even hand-optimized x87
 * assembly, by smaller factors than they beat compiled C.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();

    std::printf("Figure 2(b): fp-library / MMX ratios — speedup, dynamic "
                "instructions, memory references\n\n");

    Table table({"Benchmark", "speedup", "dyn instrs", "mem refs",
                 "| paper:", "speedup", "dyn", "mem"});
    for (const char *bench : {"fft", "fir", "iir"}) {
        const auto &fp = suite.run(bench, "fp").profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        double s = static_cast<double>(fp.cycles)
                   / static_cast<double>(mmx.cycles);
        double d = static_cast<double>(fp.dynamicInstructions)
                   / static_cast<double>(mmx.dynamicInstructions);
        double m = static_cast<double>(fp.memoryReferences)
                   / static_cast<double>(mmx.memoryReferences);
        const harness::PaperTable3Row *paper =
            harness::paperTable3For(std::string(bench) + ".fp");
        table.addRow({bench, Table::fmtFixed(s, 2), Table::fmtFixed(d, 2),
                      Table::fmtFixed(m, 2), "|",
                      paper ? Table::fmtFixed(paper->speedup, 2) : "n/a",
                      paper ? Table::fmtFixed(paper->dynamicRatio, 2)
                            : "n/a",
                      paper ? Table::fmtFixed(paper->memRatio, 2) : "n/a"});
    }
    table.print();

    std::printf("\nPaper: 'Additional speedup is achieved using MMX "
                "instead of hand-optimized floating-point assembly code' "
                "— every measured speedup above should exceed 1.0.\n");
    return 0;
}
