/**
 * @file
 * Regenerates the paper's Figure 1(b): static and dynamic instruction
 * counts of the C-only version as ratios to the MMX version, benchmarks
 * ordered by ascending speedup. Static ratios sit below 1 (MMX bloats
 * static code everywhere); dynamic ratios exceed 1 wherever MMX wins.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();
    harness::runAllTimed(suite, opts.threads);
    auto order = suite.benchmarksBySpeedup();

    std::printf("Figure 1(b): C-only vs MMX instruction-count ratios, "
                "ascending speedup order\n\n");

    Table table({"Benchmark", "Speedup", "static c/mmx", "dynamic c/mmx",
                 "| paper:", "static", "dynamic"});
    for (const auto &bench : order) {
        const auto &c = suite.run(bench, "c").profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        const harness::PaperTable3Row *paper =
            harness::paperTable3For(bench + ".c");
        table.addRow(
            {bench, Table::fmtFixed(suite.speedup(bench), 2),
             Table::fmtFixed(static_cast<double>(c.staticInstructions)
                                 / static_cast<double>(
                                       mmx.staticInstructions),
                             3),
             Table::fmtFixed(static_cast<double>(c.dynamicInstructions)
                                 / static_cast<double>(
                                       mmx.dynamicInstructions),
                             2),
             "|", paper ? Table::fmtFixed(paper->staticRatio, 3) : "n/a",
             paper ? Table::fmtFixed(paper->dynamicRatio, 2) : "n/a"});
    }
    table.print();

    // The figure's headline: every static ratio < 1.
    std::printf("\nAll static ratios < 1 (MMX always increases static "
                "code size):");
    bool all = true;
    for (const auto &bench : order) {
        const auto &c = suite.run(bench, "c").profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        all = all && c.staticInstructions < mmx.staticInstructions;
    }
    std::printf(" %s\n", all ? "yes" : "NO");
    return 0;
}
