/**
 * @file
 * Ablation for the paper's superlinear-matvec explanation (section 4.1):
 * "the imul instruction ... does integer multiplication in 10 cycles
 * versus the pmaddwd MMX instruction which can perform two
 * multiplications in 3 cycles."
 *
 * Part 1 measures the two instructions' streaming cost directly on the
 * Pentium timing model. Part 2 sweeps the matvec size and shows the
 * speedup staying well above the 4x SIMD lane width at every size.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "kernels/matvec.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/table.hh"

using namespace mmxdsp;
using runtime::Cpu;
using runtime::M64;
using runtime::R32;

namespace {

/** Cycles for `count` independent multiplies through each unit. */
void
microMultiplyCost()
{
    const int count = 1000;
    alignas(8) static int16_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};

    Cpu cpu;
    profile::VProf imul_prof;
    cpu.attachSink(&imul_prof);
    {
        R32 acc = cpu.imm32(0);
        for (int i = 0; i < count; ++i) {
            R32 x = cpu.load16s(&data[i % 4]);
            x = cpu.imulLoad16(x, &data[4 + i % 4]);
            acc = cpu.add(acc, x);
        }
    }
    cpu.attachSink(nullptr);

    profile::VProf madd_prof;
    cpu.attachSink(&madd_prof);
    {
        M64 acc = cpu.mmxZero();
        for (int i = 0; i < count; ++i) {
            M64 v = cpu.movqLoad(data);
            acc = cpu.paddd(acc, cpu.pmaddwdLoad(v, &data[0]));
        }
    }
    cpu.attachSink(nullptr);

    double imul_per = static_cast<double>(imul_prof.result().cycles) / count;
    double madd_per = static_cast<double>(madd_prof.result().cycles) / count;
    std::printf("Per-iteration cost, %d iterations:\n", count);
    std::printf("  scalar  load+imul+add       : %6.2f cycles for 1 "
                "multiply  (%5.2f cyc/mult)\n",
                imul_per, imul_per);
    std::printf("  MMX     movq+pmaddwd+paddd  : %6.2f cycles for 4 "
                "multiplies (%5.2f cyc/mult)\n",
                madd_per, madd_per / 4.0);
    std::printf("  multiply-throughput advantage: %.1fx (4x lanes x %.1fx "
                "unit speed)\n\n",
                imul_per / (madd_per / 4.0), imul_per / madd_per);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::parseBenchArgs(argc, argv);
    std::printf("Ablation: imul (10-cycle, not pipelined) vs pmaddwd "
                "(3-cycle, pipelined, 2 multiplies)\n\n");
    microMultiplyCost();

    Table table({"dim", "c cycles", "mmx cycles", "speedup",
                 "per-elem c", "per-elem mmx"});
    for (int dim : {32, 64, 128, 256, 512}) {
        kernels::MatvecBenchmark mv;
        mv.setup(dim, 11);
        Cpu cpu;
        profile::VProf pc;
        cpu.attachSink(&pc);
        mv.runC(cpu);
        cpu.attachSink(nullptr);
        profile::VProf pm;
        cpu.attachSink(&pm);
        mv.runMmx(cpu);
        cpu.attachSink(nullptr);

        uint64_t cc = pc.result().cycles;
        uint64_t mc = pm.result().cycles;
        double elems = static_cast<double>(dim) * dim + dim;
        table.addRow({Table::fmtInt(dim), Table::fmtCount(static_cast<int64_t>(cc)),
                      Table::fmtCount(static_cast<int64_t>(mc)),
                      Table::fmtFixed(static_cast<double>(cc) / mc, 2),
                      Table::fmtFixed(cc / elems, 2),
                      Table::fmtFixed(mc / elems, 2)});
    }
    table.print();
    std::printf("\nPaper: matvec speedup 6.61 at dim 512 — superlinear "
                "relative to the 4-wide lanes.\n");
    return 0;
}
