# One binary per paper table/figure, plus ablations and microbenchmarks.
function(mmxdsp_add_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
    target_link_libraries(${name} PRIVATE mmxdsp_harness mmxdsp_nsp)
endfunction()

mmxdsp_add_bench(table2_characteristics)
mmxdsp_add_bench(table3_ratios)
mmxdsp_add_bench(table_p5_vs_p6)
mmxdsp_add_bench(fig1a_mmx_mix)
mmxdsp_add_bench(fig1b_instr_ratios)
mmxdsp_add_bench(fig2a_c_vs_mmx)
mmxdsp_add_bench(fig2b_fp_vs_mmx)
mmxdsp_add_bench(ablation_imul_vs_pmaddwd)
mmxdsp_add_bench(ablation_fft_library)
mmxdsp_add_bench(ablation_jpeg_core_vs_app)
mmxdsp_add_bench(ablation_g722_blocking)
mmxdsp_add_bench(ablation_emms)
mmxdsp_add_bench(ablation_cache_sweep)
mmxdsp_add_bench(ext_motion_estimation)
mmxdsp_add_bench(micro_pentium_model)
mmxdsp_add_bench(micro_replay_throughput)

add_executable(micro_mmx_ops ${CMAKE_SOURCE_DIR}/bench/micro_mmx_ops.cpp)
set_target_properties(micro_mmx_ops PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(micro_mmx_ops PRIVATE mmxdsp_mmx benchmark::benchmark)
