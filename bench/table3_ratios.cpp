/**
 * @file
 * Regenerates the paper's Table 3: results as ratios of the non-MMX
 * program to the MMX program — speedup (clock cycles), static
 * instructions, dynamic instructions, micro-ops, and memory references —
 * printed beside the paper's values. Also reports the paper's in-text
 * function-call observations (call counts and call/ret cycle shares).
 */

#include <cstdio>
#include <limits>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

namespace {

double
ratio(uint64_t a, uint64_t b)
{
    return b ? static_cast<double>(a) / static_cast<double>(b)
             : std::numeric_limits<double>::quiet_NaN();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();
    harness::runAllTimed(suite, opts.threads);

    Table table({"Program", "Speedup", "Static", "Dynamic", "uops", "Mem",
                 "| paper:", "Speedup", "Static", "Dynamic", "uops",
                 "Mem"});

    // Paper order: fft.c, fft.fp, fir.c, fir.fp, iir.c, iir.fp,
    // matvec.c, g722.c, image.c, jpeg.c, radar.c.
    const std::pair<const char *, const char *> rows[] = {
        {"fft", "c"},    {"fft", "fp"},  {"fir", "c"},   {"fir", "fp"},
        {"iir", "c"},    {"iir", "fp"},  {"matvec", "c"}, {"g722", "c"},
        {"image", "c"},  {"jpeg", "c"},  {"radar", "c"},
    };

    for (const auto &[bench, version] : rows) {
        const auto &base = suite.run(bench, version).profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        std::string name = std::string(bench) + "." + version;
        const harness::PaperTable3Row *paper = harness::paperTable3For(name);

        std::vector<std::string> row{
            name,
            Table::fmtRatio(ratio(base.cycles, mmx.cycles)),
            Table::fmtRatio(
                ratio(base.staticInstructions, mmx.staticInstructions), 3),
            Table::fmtRatio(
                ratio(base.dynamicInstructions, mmx.dynamicInstructions)),
            Table::fmtRatio(ratio(base.uops, mmx.uops)),
            Table::fmtRatio(
                ratio(base.memoryReferences, mmx.memoryReferences)),
            "|",
        };
        if (paper) {
            row.push_back(Table::fmtFixed(paper->speedup, 2));
            row.push_back(Table::fmtFixed(paper->staticRatio, 3));
            row.push_back(Table::fmtFixed(paper->dynamicRatio, 2));
            row.push_back(Table::fmtFixed(paper->uopRatio, 2));
            row.push_back(Table::fmtFixed(paper->memRatio, 2));
        } else {
            for (int i = 0; i < 5; ++i)
                row.emplace_back("n/a");
        }
        table.addRow(std::move(row));
    }

    std::printf("Table 3: ratios of non-MMX program to MMX program "
                "(measured | paper)\n\n");
    table.print();

    // The paper's in-text call-overhead observations.
    std::printf("\nFunction-call overhead in the MMX versions "
                "(paper, section 4):\n\n");
    Table calls({"Benchmark", "calls (c)", "calls (mmx)", "ratio",
                 "call/ret cyc", "linkage cyc", "paper note"});
    struct Note
    {
        const char *bench;
        const char *note;
    } notes[] = {
        {"fir", "call+ret ~11% of cycles"},
        {"radar", "27x more calls; call/ret 23.88% of cycles"},
        {"g722", "7.7% of cycles on call overhead"},
        {"jpeg", "8.3x more clock cycles in function calling"},
    };
    for (const auto &n : notes) {
        const auto &c = suite.run(n.bench, "c").profile;
        const auto &mmx = suite.run(n.bench, "mmx").profile;
        calls.addRow({n.bench,
                      Table::fmtCount(static_cast<int64_t>(c.functionCalls)),
                      Table::fmtCount(
                          static_cast<int64_t>(mmx.functionCalls)),
                      Table::fmtRatio(ratio(mmx.functionCalls,
                                            std::max<uint64_t>(
                                                c.functionCalls, 1)),
                                      1),
                      Table::fmtPercent(mmx.pctCallRetCycles()),
                      Table::fmtPercent(
                          mmx.cycles ? static_cast<double>(
                                           mmx.callOverheadCycles)
                                           / static_cast<double>(mmx.cycles)
                                     : 0.0),
                      n.note});
    }
    calls.print();
    return 0;
}
