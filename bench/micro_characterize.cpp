/**
 * @file
 * uops.info-style self-characterization of the three timing models.
 *
 * For every (op, memory-form) the harness generates two synthetic event
 * streams — a dependency chain (latency) and an independent stream
 * (throughput) — and measures what each sim::TimingModel actually
 * sustains (sim/characterize.hh). The result is the simulator's own
 * instruction table, derived from nothing but the event-stream
 * contract, printed side by side for P5 / P6 / P6P.
 *
 * Also a regression gate for the descriptor table and the timers:
 *
 *  - every measured P5 row must be bit-exact against the closed-form
 *    expectation from the paper-derived pairing/latency/blocking rules
 *    (expectedP5Latency / expectedP5Throughput);
 *  - the P6P port model must diverge from the P6 on at least one
 *    dual-ALU-saturating stream (two single-issue compute ports cannot
 *    sustain the P6's three uops per cycle) — the contention the port
 *    model exists to express.
 *
 * Writes BENCH_characterize.json for CI artifact upload; exits nonzero
 * on any gate failure.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/characterize.hh"
#include "sim/timing_model.hh"
#include "support/table.hh"

using namespace mmxdsp;

namespace {

std::string
formName(isa::Op op, isa::MemMode mem)
{
    std::string name = isa::opName(op);
    if (mem == isa::MemMode::Load)
        name += " [ld]";
    else if (mem == isa::MemMode::Store)
        name += " [st]";
    return name;
}

/** True for streams that put >= 2 one-uop compute uops per cycle on
 *  the shared p0/p1 pair: where P6P contention must show up. */
bool
saturatesDualAlu(isa::Op op, isa::MemMode mem)
{
    if (mem != isa::MemMode::None)
        return false;
    const isa::OpInfo &info = isa::opInfo(op);
    return info.uops == 1
           && (info.unit == isa::Unit::IntAlu
               || info.unit == isa::Unit::MmxAlu);
}

} // namespace

int
main()
{
    const auto &forms = sim::characterizeForms();
    std::vector<std::vector<sim::CharacterizeRow>> byModel;
    for (size_t m = 0; m < sim::kNumModelKinds; ++m) {
        const sim::MachineConfig machine{static_cast<sim::ModelKind>(m),
                                         sim::TimerConfig{}};
        byModel.push_back(sim::characterize(machine));
    }
    const auto &p5 = byModel[static_cast<size_t>(sim::ModelKind::P5)];
    const auto &p6 = byModel[static_cast<size_t>(sim::ModelKind::P6)];
    const auto &p6p = byModel[static_cast<size_t>(sim::ModelKind::P6P)];

    // Gate 1: P5 rows bit-exact against the paper-derived closed form.
    bool p5Exact = true;
    for (size_t i = 0; i < forms.size(); ++i) {
        const auto [op, mem] = forms[i];
        const double wantLat = sim::expectedP5Latency(op, mem);
        const double wantTp = sim::expectedP5Throughput(op, mem);
        if (p5[i].latency != wantLat || p5[i].throughput != wantTp) {
            std::fprintf(stderr,
                         "FAIL: P5 %s measured lat %.4f tput %.4f, "
                         "expected lat %.4f tput %.4f\n",
                         formName(op, mem).c_str(), p5[i].latency,
                         p5[i].throughput, wantLat, wantTp);
            p5Exact = false;
        }
    }

    // Gate 2: port contention separates P6P from P6 on every
    // dual-ALU-saturating stream (and on at least one overall).
    size_t saturating = 0;
    size_t diverged = 0;
    for (size_t i = 0; i < forms.size(); ++i) {
        const auto [op, mem] = forms[i];
        if (!saturatesDualAlu(op, mem))
            continue;
        ++saturating;
        if (p6p[i].throughput > p6[i].throughput)
            ++diverged;
    }
    const bool contentionSeen = saturating > 0 && diverged > 0;
    if (!contentionSeen)
        std::fprintf(stderr,
                     "FAIL: P6P throughput never exceeded P6 on any of "
                     "the %zu dual-ALU-saturating streams\n",
                     saturating);

    std::printf("self-characterized instruction costs "
                "(chain latency / stream throughput, cycles per "
                "instruction; %zu-event measure window)\n\n",
                sim::kCharacterizeMeasure);
    Table table({"form", "P5 lat", "P5 tput", "P6 lat", "P6 tput",
                 "P6P lat", "P6P tput"});
    for (size_t i = 0; i < forms.size(); ++i) {
        const auto [op, mem] = forms[i];
        table.addRow({formName(op, mem),
                      Table::fmtFixed(p5[i].latency, 2),
                      Table::fmtFixed(p5[i].throughput, 2),
                      Table::fmtFixed(p6[i].latency, 2),
                      Table::fmtFixed(p6[i].throughput, 2),
                      Table::fmtFixed(p6p[i].latency, 2),
                      Table::fmtFixed(p6p[i].throughput, 2)});
    }
    table.print();
    std::printf("\nP5 rows match the paper-derived table %s; "
                "P6P port contention visible on %zu/%zu "
                "ALU-saturating streams\n",
                p5Exact ? "bit-exactly" : "NO",
                diverged, saturating);

    std::FILE *json = std::fopen("BENCH_characterize.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"measure_window\": %zu,\n  \"forms\": [\n",
                     sim::kCharacterizeMeasure);
        for (size_t i = 0; i < forms.size(); ++i) {
            const auto [op, mem] = forms[i];
            std::fprintf(
                json,
                "    {\"form\": \"%s\", "
                "\"p5\": {\"latency\": %.6f, \"throughput\": %.6f}, "
                "\"p6\": {\"latency\": %.6f, \"throughput\": %.6f}, "
                "\"p6p\": {\"latency\": %.6f, \"throughput\": %.6f}}%s\n",
                formName(op, mem).c_str(), p5[i].latency, p5[i].throughput,
                p6[i].latency, p6[i].throughput, p6p[i].latency,
                p6p[i].throughput, i + 1 < forms.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n  \"p5_exact\": %s,\n"
                     "  \"p6p_contention_streams\": %zu\n}\n",
                     p5Exact ? "true" : "false", diverged);
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_characterize.json\n");
    }

    return p5Exact && contentionSeen ? 0 : 1;
}
