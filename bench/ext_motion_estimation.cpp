/**
 * @file
 * Extension bench (the paper's future work: "more benchmarks, such as
 * an MPEG video codec"): full-search motion estimation, the MPEG
 * encoder's dominant kernel, with the hand-tailored MMX SAD. Unlike
 * the library-composed applications, hand-coding follows the paper's
 * own recipe for getting the full MMX win on contiguous 8-bit data.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "kernels/motion.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/table.hh"

using namespace mmxdsp;

int
main(int argc, char **argv)
{
    harness::parseBenchArgs(argc, argv);
    std::printf("Extension: MPEG-style motion estimation (full-search "
                "16x16 SAD)\n\n");

    Table table({"frame", "radius", "c cycles", "mmx cycles", "speedup",
                 "%MMX", "vectors agree"});
    for (auto [size, radius] : {std::pair{48, 3}, {64, 4}, {96, 7}}) {
        kernels::MotionBenchmark motion;
        motion.setup(size, size, radius, radius / 2, -(radius / 3), 77);
        runtime::Cpu cpu;

        profile::VProf pc;
        cpu.attachSink(&pc);
        motion.runC(cpu);
        cpu.attachSink(nullptr);
        profile::VProf pm;
        cpu.attachSink(&pm);
        motion.runMmx(cpu);
        cpu.attachSink(nullptr);

        char frame[24];
        std::snprintf(frame, sizeof(frame), "%dx%d", size, size);
        table.addRow(
            {frame, Table::fmtInt(radius),
             Table::fmtCount(static_cast<int64_t>(pc.result().cycles)),
             Table::fmtCount(static_cast<int64_t>(pm.result().cycles)),
             Table::fmtFixed(static_cast<double>(pc.result().cycles)
                                 / pm.result().cycles,
                             2),
             Table::fmtPercent(pm.result().pctMmx()),
             motion.outC() == motion.outMmx() ? "yes" : "NO"});
    }
    table.print();
    std::printf("\nHand-tailored MMX on contiguous 8-bit data lands in "
                "the image-benchmark regime (paper: 5.5x), supporting "
                "the paper's conclusion that tailoring beats library "
                "composition.\n");
    return 0;
}
