/**
 * @file
 * Regenerates the paper's Figure 1(a): the percentage of MMX
 * instructions in each MMX benchmark version, broken into the paper's
 * four categories (pack/unpack, MMX arithmetic, 64-bit MMX moves, emms),
 * with benchmarks ordered by ascending C-to-MMX speedup and the speedup
 * printed above each bar, exactly as in the paper.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

namespace {

std::string
bar(double fraction, double per_char = 0.01)
{
    int n = static_cast<int>(fraction / per_char + 0.5);
    return std::string(static_cast<size_t>(std::max(n, 0)), '#');
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();
    harness::runAllTimed(suite, opts.threads);
    auto order = suite.benchmarksBySpeedup();

    std::printf("Figure 1(a): breakdown of MMX instructions, benchmarks "
                "in ascending speedup order\n(speedup above each bar; "
                "one '#' = 1%% of dynamic instructions)\n\n");

    Table table({"Benchmark", "Speedup", "%MMX", "pack/unpack", "arith",
                 "mov64", "emms", "paper %MMX"});
    for (const auto &bench : order) {
        const auto &mmx = suite.run(bench, "mmx").profile;
        const harness::PaperTable2Row *paper =
            harness::paperTable2For(bench + ".mmx");
        auto cat = [&](isa::MmxCategory c) {
            return mmx.pctMmxOfCategory(c);
        };
        table.addRow({bench, Table::fmtFixed(suite.speedup(bench), 2),
                      Table::fmtPercent(mmx.pctMmx()),
                      Table::fmtPercent(cat(isa::MmxCategory::PackUnpack)),
                      Table::fmtPercent(cat(isa::MmxCategory::Arith)),
                      Table::fmtPercent(cat(isa::MmxCategory::Mov)),
                      Table::fmtPercent(cat(isa::MmxCategory::Emms), 3),
                      paper ? Table::fmtFixed(paper->pctMmx, 2) + "%"
                            : "n/a"});
    }
    table.print();

    std::printf("\nBars (P = pack/unpack, A = arithmetic, M = moves):\n\n");
    for (const auto &bench : order) {
        const auto &mmx = suite.run(bench, "mmx").profile;
        double p = mmx.pctMmxOfCategory(isa::MmxCategory::PackUnpack);
        double a = mmx.pctMmxOfCategory(isa::MmxCategory::Arith);
        double m = mmx.pctMmxOfCategory(isa::MmxCategory::Mov);
        std::printf("%8s (%.2fx) |", bench.c_str(), suite.speedup(bench));
        std::string pb = bar(p);
        std::string ab = bar(a);
        std::string mb = bar(m);
        for (char &ch : pb)
            ch = 'P';
        for (char &ch : ab)
            ch = 'A';
        for (char &ch : mb)
            ch = 'M';
        std::printf("%s%s%s\n", pb.c_str(), ab.c_str(), mb.c_str());
    }

    std::printf("\nIn-text checks: fir pack/unpack = %llu (paper: zero); "
                "matvec pack/unpack share of MMX = %.1f%% (paper: 20.5%% "
                "of instructions with significant speedup anyway).\n",
                static_cast<unsigned long long>(
                    suite.run("fir", "mmx")
                        .profile.mmxByCategory[static_cast<size_t>(
                            isa::MmxCategory::PackUnpack)]),
                100.0
                    * suite.run("matvec", "mmx")
                          .profile.pctMmxOfCategory(
                              isa::MmxCategory::PackUnpack));
    return 0;
}
