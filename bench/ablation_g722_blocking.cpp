/**
 * @file
 * Ablation for the paper's block-size observation (section 4.2): g722
 * "only processes one input at a time while encoding and decoding.
 * Operating on blocks of data at once would definitely increase the
 * opportunity to use MMX code."
 *
 * Part 1 sweeps the vector length of an MMX library call and reports
 * per-element cost: at the lengths a sample-at-a-time codec can offer
 * (6-12 elements), call overhead dominates; by a few hundred elements
 * it has amortized away.
 * Part 2 shows the whole-codec consequence (g722.c vs g722.mmx).
 */

#include <algorithm>
#include <cstdio>

#include "apps/g722/g722_app.hh"
#include "apps/g722/g722_codec.hh"
#include "harness/cli.hh"
#include "workloads/signal_data.hh"
#include "nsp/vector.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"
#include "support/table.hh"

using namespace mmxdsp;
using runtime::Cpu;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    Cpu cpu;
    Rng rng(3);

    std::printf("Part 1: MMX library dot product — per-element cycles vs "
                "vector length\n\n");
    Table sweep({"length", "cycles/call", "cycles/element",
                 "overhead share"});
    std::vector<int16_t> a(4096);
    std::vector<int16_t> b(4096);
    for (auto &v : a)
        v = static_cast<int16_t>(rng.nextInRange(-1000, 1000));
    for (auto &v : b)
        v = static_cast<int16_t>(rng.nextInRange(-1000, 1000));

    // Estimate the pure per-element cost from the longest call.
    double asymptotic = 0.0;
    for (int n : {4096, 512, 128, 64, 32, 16, 12, 8, 4}) {
        const int reps = std::max(1, 4096 / n);
        profile::VProf prof;
        cpu.attachSink(&prof);
        for (int r = 0; r < reps; ++r)
            nsp::dotProdMmx(cpu, a.data(), b.data(), n);
        cpu.attachSink(nullptr);
        double per_call = static_cast<double>(prof.result().cycles) / reps;
        double per_elem = per_call / n;
        if (n == 4096)
            asymptotic = per_elem;
        sweep.addRow({Table::fmtInt(n), Table::fmtFixed(per_call, 1),
                      Table::fmtFixed(per_elem, 2),
                      Table::fmtPercent(1.0 - asymptotic / per_elem)});
    }
    sweep.print();

    std::printf("\nPart 2: the consequence for the sample-at-a-time "
                "codec\n\n");
    apps::g722::G722Benchmark bench;
    bench.setup(std::max(256, 2048 / opts.scale), 5);
    profile::VProf pc;
    cpu.attachSink(&pc);
    bench.runC(cpu);
    cpu.attachSink(nullptr);
    profile::VProf pm;
    cpu.attachSink(&pm);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = pc.result();
    auto rm = pm.result();
    Table codec({"version", "cycles", "dyn instrs", "%MMX", "calls"});
    codec.addRow({"g722.c", Table::fmtCount(static_cast<int64_t>(rc.cycles)),
                  Table::fmtCount(static_cast<int64_t>(rc.dynamicInstructions)),
                  Table::fmtPercent(rc.pctMmx()),
                  Table::fmtCount(static_cast<int64_t>(rc.functionCalls))});
    codec.addRow({"g722.mmx",
                  Table::fmtCount(static_cast<int64_t>(rm.cycles)),
                  Table::fmtCount(static_cast<int64_t>(rm.dynamicInstructions)),
                  Table::fmtPercent(rm.pctMmx()),
                  Table::fmtCount(static_cast<int64_t>(rm.functionCalls))});
    codec.print();
    std::printf("\nspeedup %.2f (paper: 0.77 — a slowdown). The 6-12 "
                "element library calls the codec's structure permits sit "
                "in the overhead-dominated region of the sweep above.\n",
                static_cast<double>(rc.cycles) / rm.cycles);

    // ---- Part 3: the paper's proposed fix, implemented ----
    std::printf("\nPart 3: block-mode encoding (the paper's future-work "
                "suggestion)\n\n");
    auto speech = workloads::makeSpeech(4096, 23);
    Table blk({"encoder", "cycles", "calls", "speedup vs g722.c enc"});

    uint64_t c_enc;
    {
        apps::g722::G722Codec codec(apps::g722::G722Codec::Mode::ScalarC);
        profile::VProf prof;
        cpu.attachSink(&prof);
        for (size_t n = 0; n + 1 < speech.size(); n += 2)
            codec.encodePair(cpu, &speech[n]);
        cpu.attachSink(nullptr);
        c_enc = prof.result().cycles;
        blk.addRow({"C per-pair",
                    Table::fmtCount(static_cast<int64_t>(c_enc)),
                    Table::fmtCount(
                        static_cast<int64_t>(prof.result().functionCalls)),
                    "1.00"});
    }
    {
        apps::g722::G722Codec codec(apps::g722::G722Codec::Mode::Mmx);
        profile::VProf prof;
        cpu.attachSink(&prof);
        for (size_t n = 0; n + 1 < speech.size(); n += 2)
            codec.encodePair(cpu, &speech[n]);
        cpu.attachSink(nullptr);
        blk.addRow({"MMX per-pair (the paper's version)",
                    Table::fmtCount(
                        static_cast<int64_t>(prof.result().cycles)),
                    Table::fmtCount(
                        static_cast<int64_t>(prof.result().functionCalls)),
                    Table::fmtFixed(static_cast<double>(c_enc)
                                        / prof.result().cycles,
                                    2)});
    }
    for (int pairs : {8, 32, 128}) {
        apps::g722::G722Codec codec(apps::g722::G722Codec::Mode::Mmx);
        std::vector<uint8_t> out(speech.size() / 2);
        profile::VProf prof;
        cpu.attachSink(&prof);
        for (size_t n = 0;
             n + 2 * static_cast<size_t>(pairs) <= speech.size();
             n += 2 * static_cast<size_t>(pairs))
            codec.encodeBlock(cpu, &speech[n], pairs, &out[n / 2]);
        cpu.attachSink(nullptr);
        char label[64];
        std::snprintf(label, sizeof(label), "MMX block (%d pairs)", pairs);
        blk.addRow({label,
                    Table::fmtCount(
                        static_cast<int64_t>(prof.result().cycles)),
                    Table::fmtCount(
                        static_cast<int64_t>(prof.result().functionCalls)),
                    Table::fmtFixed(static_cast<double>(c_enc)
                                        / prof.result().cycles,
                                    2)});
    }
    blk.print();
    std::printf("\nBatching the QMF into long library calls turns the "
                "encoder's MMX slowdown into a win, confirming the "
                "paper's prediction.\n");
    return 0;
}
