/**
 * @file
 * Ablation for the paper's JPEG analysis (section 4.2): the three
 * MMX-optimized core functions (color conversion, DCT, quantization)
 * sped up while the application as a whole slowed down to 0.49x, and
 * the 2-D DCT composed from "16 calls to a one-dimensional DCT
 * function" reached only 1.1x where a hand-coded 2-D MMX DCT reached
 * 1.7x.
 *
 * Part 1: per-function cycle breakdown of both encoder versions with a
 * core-vs-whole-application speedup split.
 * Part 2: per-block DCT comparison — integer islow C vs the 16-call
 * library composition vs the hand-coded 2-D MMX DCT.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "apps/jpeg/jpeg_encoder.hh"
#include "harness/cli.hh"
#include "nsp/dct.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/rng.hh"
#include "support/table.hh"
#include "workloads/image_data.hh"

using namespace mmxdsp;
using runtime::Cpu;

namespace {

bool
isCoreFunction(const std::string &name)
{
    // The three optimized functions plus everything the library calls
    // on their behalf (internal copies, validation, allocation).
    return name.find("convert") != std::string::npos
           || name.find("Ycbcr") != std::string::npos
           || name.find("RgbToYCbCr") != std::string::npos
           || name.find("fdct") != std::string::npos
           || name.find("Dct") != std::string::npos
           || name.find("quant") != std::string::npos
           || name.find("Quant") != std::string::npos
           || name.find("nspAlloc") != std::string::npos
           || name.find("nspFree") != std::string::npos
           || name.find("nspCheckArgs") != std::string::npos
           || name.find("nspsbCopy") != std::string::npos;
}

uint64_t
coreCycles(const profile::ProfileResult &r)
{
    uint64_t core = 0;
    for (const auto &[name, st] : r.functions) {
        if (isCoreFunction(name))
            core += st.cycles;
    }
    return core;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    const int w = std::max(32, 128 / opts.scale);
    const int h = std::max(32, 96 / opts.scale);
    auto img = workloads::makeTestImage(w, h, 33);
    apps::jpeg::JpegBenchmark bench;
    bench.setup(img, 75);
    Cpu cpu;

    profile::VProf pc;
    cpu.attachSink(&pc);
    bench.runC(cpu);
    cpu.attachSink(nullptr);
    profile::VProf pm;
    cpu.attachSink(&pm);
    bench.runMmx(cpu);
    cpu.attachSink(nullptr);

    auto rc = pc.result();
    auto rm = pm.result();

    std::printf("Part 1: per-function cycles, %dx%d image\n\n", w, h);
    for (auto *r : {&rc, &rm}) {
        std::printf("-- %s version --\n", r == &rc ? "C" : "MMX");
        Table t({"function", "calls", "cycles", "% of total"});
        for (const auto &[name, st] : r->functions) {
            t.addRow({name, Table::fmtCount(static_cast<int64_t>(st.calls)),
                      Table::fmtCount(static_cast<int64_t>(st.cycles)),
                      Table::fmtPercent(static_cast<double>(st.cycles)
                                        / static_cast<double>(r->cycles))});
        }
        t.print();
        std::printf("\n");
    }

    uint64_t core_c = coreCycles(rc);
    uint64_t core_m = coreCycles(rm);
    std::printf("core (colorconv+DCT+quant incl. library internals):\n");
    std::printf("  C   %10llu cycles (%.1f%% of app — paper: 74%%)\n",
                static_cast<unsigned long long>(core_c),
                100.0 * static_cast<double>(core_c) / rc.cycles);
    std::printf("  MMX %10llu cycles\n",
                static_cast<unsigned long long>(core_m));
    std::printf("  core speedup       %.2f   (paper: 1.6)\n",
                static_cast<double>(core_c) / core_m);
    std::printf("  whole-app speedup  %.2f   (paper: 0.49)\n\n",
                static_cast<double>(rc.cycles) / rm.cycles);

    // ---- Part 2: the 2-D DCT three ways ----
    const int blocks = 64;
    Rng rng(7);
    std::vector<int16_t> data(static_cast<size_t>(blocks) * 64);
    for (auto &v : data)
        v = static_cast<int16_t>(rng.nextInRange(-128, 127));

    // a) 16 calls to the 1-D library DCT + scalar transposes (what the
    //    application had to do).
    uint64_t composed;
    {
        profile::VProf prof;
        cpu.attachSink(&prof);
        alignas(8) int16_t t1[64];
        alignas(8) int16_t t2[64];
        alignas(8) int16_t out[64];
        for (int b = 0; b < blocks; ++b) {
            const int16_t *blk = &data[static_cast<size_t>(b) * 64];
            for (int r = 0; r < 8; ++r)
                nsp::dct1dMmx(cpu, blk + 8 * r, &t1[8 * r]);
            for (int i = 0; i < 64; ++i) {
                runtime::R32 v = cpu.load16s(&t1[(i % 8) * 8 + i / 8]);
                cpu.store16(&t2[i], v);
                cpu.jcc(i + 1 < 64);
            }
            for (int r = 0; r < 8; ++r)
                nsp::dct1dMmx(cpu, &t2[8 * r], &t1[8 * r]);
            for (int i = 0; i < 64; ++i) {
                runtime::R32 v = cpu.load16s(&t1[(i % 8) * 8 + i / 8]);
                cpu.store16(&out[i], v);
                cpu.jcc(i + 1 < 64);
            }
        }
        cpu.attachSink(nullptr);
        composed = prof.result().cycles;
    }

    // b) the hand-coded one-call 2-D MMX DCT.
    uint64_t direct;
    {
        profile::VProf prof;
        cpu.attachSink(&prof);
        alignas(8) int16_t out[64];
        for (int b = 0; b < blocks; ++b)
            nsp::dct2dMmxDirect(cpu, &data[static_cast<size_t>(b) * 64],
                                out);
        cpu.attachSink(nullptr);
        direct = prof.result().cycles;
    }

    // c) the C integer islow as the baseline, from the encoder's own
    //    profile (jpeg_fdct_islow covers exactly the 2-D DCT).
    uint64_t islow = rc.functions.at("jpeg_fdct_islow").cycles;
    uint64_t islow_blocks = rc.functions.at("jpeg_fdct_islow").calls;
    double islow_per = static_cast<double>(islow) / islow_blocks;

    std::printf("Part 2: one 8x8 2-D DCT, three ways (per block)\n\n");
    Table t({"implementation", "cycles/block", "speedup vs C islow"});
    t.addRow({"C integer islow (12 mults/pass)",
              Table::fmtFixed(islow_per, 0), "1.00"});
    t.addRow({"16x 1-D library calls + transposes",
              Table::fmtFixed(static_cast<double>(composed) / blocks, 0),
              Table::fmtFixed(islow_per * blocks / composed, 2)});
    t.addRow({"hand-coded 2-D MMX DCT (one call)",
              Table::fmtFixed(static_cast<double>(direct) / blocks, 0),
              Table::fmtFixed(islow_per * blocks / direct, 2)});
    t.print();
    std::printf("\nPaper: composed 1.1x, hand-coded 1.7x — 'Benchmarks "
                "that can truly exploit MMX will require ... hand-coding "
                "some functions not available in the Intel assembly "
                "libraries, such as the 2-D DCT.'\n");
    return 0;
}
