/**
 * @file
 * Regenerates the paper's Figure 2(a): C-only to MMX ratios for
 * execution time (speedup), dynamic instructions, and memory references,
 * across all benchmarks. The figure's point: the reductions in dynamic
 * instructions and memory references track the reduction in execution
 * time closely.
 */

#include <cmath>
#include <cstdio>

#include "harness/cli.hh"
#include "harness/paper_data.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();
    harness::runAllTimed(suite, opts.threads);
    auto order = suite.benchmarksBySpeedup();

    std::printf("Figure 2(a): C-only / MMX ratios — speedup, dynamic "
                "instructions, memory references\n\n");

    Table table({"Benchmark", "speedup", "dyn instrs", "mem refs",
                 "| paper:", "speedup", "dyn", "mem"});
    double corr_num = 0.0;
    double corr_da = 0.0;
    double corr_db = 0.0;
    double mean_s = 0.0;
    double mean_d = 0.0;
    for (const auto &bench : order) {
        const auto &c = suite.run(bench, "c").profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        double s = suite.speedup(bench);
        double d = static_cast<double>(c.dynamicInstructions)
                   / static_cast<double>(mmx.dynamicInstructions);
        double m = static_cast<double>(c.memoryReferences)
                   / static_cast<double>(mmx.memoryReferences);
        mean_s += s;
        mean_d += d;
        const harness::PaperTable3Row *paper =
            harness::paperTable3For(bench + ".c");
        table.addRow({bench, Table::fmtFixed(s, 2), Table::fmtFixed(d, 2),
                      Table::fmtFixed(m, 2), "|",
                      paper ? Table::fmtFixed(paper->speedup, 2) : "n/a",
                      paper ? Table::fmtFixed(paper->dynamicRatio, 2)
                            : "n/a",
                      paper ? Table::fmtFixed(paper->memRatio, 2) : "n/a"});
    }
    table.print();

    // "The reduction of memory references and dynamic instructions ...
    // correspond closely with the decrease in execution time."
    mean_s /= static_cast<double>(order.size());
    mean_d /= static_cast<double>(order.size());
    for (const auto &bench : order) {
        const auto &c = suite.run(bench, "c").profile;
        const auto &mmx = suite.run(bench, "mmx").profile;
        double s = suite.speedup(bench) - mean_s;
        double d = static_cast<double>(c.dynamicInstructions)
                       / static_cast<double>(mmx.dynamicInstructions)
                   - mean_d;
        corr_num += s * d;
        corr_da += s * s;
        corr_db += d * d;
    }
    std::printf("\nCorrelation(speedup, dynamic-instruction ratio) = "
                "%.3f (paper: 'correspond closely')\n",
                corr_num / std::sqrt(corr_da * corr_db));
    return 0;
}
