/**
 * @file
 * Characterization of the timing substrate itself: per-benchmark IPC,
 * U/V pairing rate, stall composition, cache and BTB behaviour — the
 * numbers that explain *why* the Table 3 speedups come out the way
 * they do on a Pentium-class in-order machine.
 */

#include <cstdio>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    harness::SuiteConfig config = opts.suiteConfig();
    config.scaleDown(2); // characterization doesn't need full sizes
    BenchmarkSuite suite(config, opts.traceOptions());
    harness::runAllTimed(suite, opts.threads);

    Table table({"program", "IPC", "pair rate", "mem-stall %",
                 "depend-stall %", "mispredict %", "L1 miss", "BTB mpr"});

    for (const auto &[bench, version] : BenchmarkSuite::allRuns()) {
        const auto &p = suite.run(bench, version).profile;
        auto pct = [&](uint64_t cyc) {
            return Table::fmtPercent(
                p.cycles ? static_cast<double>(cyc)
                               / static_cast<double>(p.cycles)
                         : 0.0,
                1);
        };
        table.addRow({bench + ("." + version),
                      Table::fmtFixed(p.instructionsPerCycle(), 2),
                      Table::fmtPercent(p.timer.pairRate(), 1),
                      pct(p.timer.memPenaltyCycles),
                      pct(p.timer.dependStallCycles),
                      pct(p.timer.mispredictCycles),
                      Table::fmtPercent(p.l1.missRate(), 2),
                      Table::fmtPercent(p.btb.mispredictRate(), 2)});
    }

    std::printf("Pentium model characterization (half-size workloads)\n\n");
    table.print();
    std::printf(
        "\nReading guide: the .c versions of the float kernels sit at "
        "low IPC (x87 is non-pairing and\nimul/idiv block the pipe); "
        "the MMX versions pair heavily until memory or the single\n"
        "multiplier port limits them. jpeg.c's IPC is dominated by "
        "idiv-based quantization.\n");
    return 0;
}
