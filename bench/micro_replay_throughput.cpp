/**
 * @file
 * Microbenchmark of the replay engine's paths, and the regression gate
 * for both the decode-once and the config-parallel optimizations:
 *
 *  - streaming: every configuration of a sweep decodes the serialized
 *    trace body again through trace::replayProfile (the baseline
 *    capture-once/replay-many semantics);
 *  - materialized scalar: the body is decoded once into a
 *    trace::MaterializedTrace and every configuration runs its own full
 *    timing pass over the shared buffers (replaySweepScalar — the
 *    golden reference path);
 *  - config-parallel: the same shared buffers, but all configurations
 *    advance together in one lane-packed pass fed by per-geometry
 *    cache/BTB memos (replaySweepPacked — the default replaySweep
 *    dispatch).
 *
 * Also times live capture (functional execution + block-buffered emit +
 * encoding, no timing model) of the same pair on a fresh suite, so the
 * capture-once cost can be read next to the replay-many cost.
 *
 * The cold-capture arms time the full cold-miss path — execution to a
 * replayable MaterializedTrace — both ways:
 *
 *  - varint: traceFor (capture through TraceWriter, LEB128 encode,
 *    serialize, parse) followed by MaterializedTrace::build — the
 *    v1 golden reference, and the only path under
 *    -DMMXDSP_FORCE_V1_CAPTURE=ON;
 *  - direct: materializedFor on a cache-less suite, which captures
 *    straight into the SoA buffers through a trace::MaterializeSink
 *    (no varint encode or decode anywhere).
 *
 * --configs=N picks the sweep width of the headline table (default 12);
 * a scaling run at N = 2/4/8/12 lands in BENCH_replay.json regardless.
 * The binary verifies all three sweeps are bit-identical and exits
 * nonzero on divergence, if the scalar materialized sweep is not faster
 * than streaming, or (in optimized builds) if the config-parallel sweep
 * is not >= 3x faster than streaming at N=12 or the direct cold capture
 * is not >= 1.5x faster than the varint cold capture — the ROADMAP and
 * PR-8 perf gates.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "sim/pentium_timer.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "trace/materialize.hh"
#include "trace/materialize_sink.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

using namespace mmxdsp;

namespace {

constexpr int kRepetitions = 3;
constexpr double kPackedSpeedupGate = 3.0; ///< at 12 configs, Release
constexpr double kColdCaptureGate = 1.5;   ///< direct vs varint, Release

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The sweep grid: up to 12 distinct memory-hierarchy configurations
 *  (4 L1 sizes x 3 L2 sizes), repeated with scaled BTBs beyond that. */
std::vector<sim::TimerConfig>
makeConfigs(size_t count)
{
    std::vector<sim::TimerConfig> configs;
    uint32_t btb = 256;
    while (configs.size() < count) {
        for (uint32_t l1_kb : {4, 8, 16, 32}) {
            for (uint32_t l2_kb : {128, 512, 2048}) {
                if (configs.size() == count)
                    break;
                sim::TimerConfig config;
                config.l1.size_bytes = l1_kb * 1024;
                config.l2.size_bytes = l2_kb * 1024;
                config.btb_entries = btb;
                configs.push_back(config);
            }
        }
        btb /= 2; // every dozen gets a fresh BTB geometry: all unique
    }
    return configs;
}

bool
sameResult(const profile::ProfileResult &a, const profile::ProfileResult &b)
{
    if (a.cycles != b.cycles
        || a.dynamicInstructions != b.dynamicInstructions
        || a.staticInstructions != b.staticInstructions || a.uops != b.uops
        || a.memoryReferences != b.memoryReferences
        || a.mmxInstructions != b.mmxInstructions
        || a.mmxByCategory != b.mmxByCategory
        || a.functionCalls != b.functionCalls
        || a.callRetCycles != b.callRetCycles
        || a.callOverheadCycles != b.callOverheadCycles
        || a.opCounts != b.opCounts)
        return false;
    if (a.timer.pairs != b.timer.pairs
        || a.timer.uopsIssued != b.timer.uopsIssued
        || a.timer.memPenaltyCycles != b.timer.memPenaltyCycles
        || a.timer.mispredictCycles != b.timer.mispredictCycles
        || a.timer.dependStallCycles != b.timer.dependStallCycles
        || a.timer.retireStallCycles != b.timer.retireStallCycles
        || a.timer.blockingExtraCycles != b.timer.blockingExtraCycles)
        return false;
    if (a.l1.accesses != b.l1.accesses || a.l1.misses != b.l1.misses
        || a.l2.accesses != b.l2.accesses || a.l2.misses != b.l2.misses
        || a.btb.branches != b.btb.branches
        || a.btb.mispredicts != b.btb.mispredicts)
        return false;
    if (a.functions.size() != b.functions.size())
        return false;
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        if (it == b.functions.end() || st.calls != it->second.calls
            || st.instructions != it->second.instructions
            || st.cycles != it->second.cycles)
            return false;
    }
    return true;
}

/** One sweep-width measurement across the three sweep paths. */
struct ScalePoint
{
    size_t configs = 0;
    double streaming_seconds = 0.0;
    double scalar_seconds = 0.0; ///< materialize + replaySweepScalar
    double packed_seconds = 0.0; ///< materialize + replaySweepPacked
};

} // namespace

int
main(int argc, char **argv)
{
    // --configs=N is this binary's own flag; parseBenchArgs exits on
    // anything it does not recognize, so strip it from argv first.
    size_t gateConfigs = 12;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--configs=", 10) == 0) {
            const long v = std::atol(argv[i] + 10);
            if (v < 1) {
                std::fprintf(stderr, "--configs=N requires N >= 1\n");
                return 2;
            }
            gateConfigs = static_cast<size_t>(v);
        } else {
            args.push_back(argv[i]);
        }
    }
    harness::BenchOptions opts = harness::parseBenchArgs(
        static_cast<int>(args.size()), args.data());
    harness::BenchmarkSuite suite = opts.makeSuite();

    const char *bench = "jpeg";
    const char *version = "c";
    std::fprintf(stderr, "capturing %s.%s trace (scale %d)...\n", bench,
                 version, opts.scale);
    auto reader = suite.traceFor(bench, version);
    const uint64_t events = reader->instrCount();

    // The sweep widths measured: the scaling ladder plus --configs=N.
    std::vector<size_t> widths = {2, 4, 8, 12};
    if (std::find(widths.begin(), widths.end(), gateConfigs) == widths.end())
        widths.push_back(gateConfigs);
    std::sort(widths.begin(), widths.end());

    // -- sweep arms at every width (best-of-N wall time each) --
    // The materialized arms rebuild the trace inside the timed region:
    // the comparison is end-to-end (decode + sweep) against streaming.
    std::vector<ScalePoint> scaling;
    std::vector<profile::ProfileResult> streamed, scalarSwept, packedSwept;
    for (size_t width : widths) {
        const std::vector<sim::TimerConfig> configs = makeConfigs(width);
        std::vector<sim::MachineConfig> machines;
        for (const sim::TimerConfig &config : configs)
            machines.push_back({opts.model, config});
        ScalePoint point;
        point.configs = width;

        std::vector<profile::ProfileResult> stream(configs.size());
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const double t0 = now();
            parallelFor(configs.size(), opts.threads, [&](size_t i) {
                stream[i] = trace::replayProfile(*reader, machines[i]);
            });
            const double dt = now() - t0;
            if (!rep || dt < point.streaming_seconds)
                point.streaming_seconds = dt;
        }

        std::vector<profile::ProfileResult> scalar;
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const double t0 = now();
            trace::MaterializedTrace shared;
            if (!shared.build(*reader)) {
                std::fprintf(stderr, "FAIL: trace did not materialize\n");
                return 1;
            }
            scalar = shared.replaySweepScalar(machines, opts.threads);
            const double dt = now() - t0;
            if (!rep || dt < point.scalar_seconds)
                point.scalar_seconds = dt;
        }

        std::vector<profile::ProfileResult> packed;
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const double t0 = now();
            trace::MaterializedTrace shared;
            if (!shared.build(*reader))
                return 1;
            packed = shared.replaySweepPacked(machines, opts.threads);
            const double dt = now() - t0;
            if (!rep || dt < point.packed_seconds)
                point.packed_seconds = dt;
        }

        scaling.push_back(point);
        if (width == gateConfigs) {
            streamed = std::move(stream);
            scalarSwept = std::move(scalar);
            packedSwept = std::move(packed);
        }
    }

    const auto pointAt = [&](size_t width) -> const ScalePoint & {
        for (const ScalePoint &p : scaling)
            if (p.configs == width)
                return p;
        return scaling.back();
    };
    const ScalePoint &gate = pointAt(gateConfigs);

    // -- single-replay throughput of both decode paths --
    double streaming_single = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        trace::replayProfile(*reader);
        const double dt = now() - t0;
        if (!rep || dt < streaming_single)
            streaming_single = dt;
    }
    trace::MaterializedTrace mat;
    double build_seconds = 0.0;
    {
        const double t0 = now();
        if (!mat.build(*reader)) {
            std::fprintf(stderr, "FAIL: trace did not materialize\n");
            return 1;
        }
        build_seconds = now() - t0;
    }
    double materialized_single = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        mat.replayProfile();
        const double dt = now() - t0;
        if (!rep || dt < materialized_single)
            materialized_single = dt;
    }

    // -- live-capture arm: execute + capture, no timing model --
    // A fresh suite with the disk cache off pays the full capture each
    // time: functional execution, block-buffered emit, encoding.
    double capture_seconds = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        harness::BenchmarkSuite live(opts.suiteConfig(),
                                     harness::TraceOptions{},
                                     opts.machineConfig());
        const double t0 = now();
        auto captured = live.traceFor(bench, version);
        const double dt = now() - t0;
        if (captured->instrCount() != events) {
            std::fprintf(stderr, "FAIL: live capture event count drifted\n");
            return 1;
        }
        if (!rep || dt < capture_seconds)
            capture_seconds = dt;
    }

    // -- cold-capture arms: execution to a replayable trace, both ways --
    // Each repetition pays the full cold miss on a fresh cache-less
    // suite. The varint arm is capture -> LEB128 encode -> serialize ->
    // parse -> build; the direct arm is materializedFor, which (outside
    // MMXDSP_FORCE_V1_CAPTURE builds) captures straight into the SoA
    // buffers through a MaterializeSink.
    double cold_varint_seconds = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        harness::BenchmarkSuite cold(opts.suiteConfig(),
                                     harness::TraceOptions{},
                                     opts.machineConfig());
        const double t0 = now();
        auto captured = cold.traceFor(bench, version);
        trace::MaterializedTrace built;
        if (!built.build(*captured)) {
            std::fprintf(stderr, "FAIL: cold varint capture did not "
                                 "materialize\n");
            return 1;
        }
        const double dt = now() - t0;
        if (built.instrCount() != events) {
            std::fprintf(stderr,
                         "FAIL: cold varint capture event count drifted\n");
            return 1;
        }
        if (!rep || dt < cold_varint_seconds)
            cold_varint_seconds = dt;
    }
    double cold_direct_seconds = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        harness::BenchmarkSuite cold(opts.suiteConfig(),
                                     harness::TraceOptions{},
                                     opts.machineConfig());
        const double t0 = now();
        auto direct = cold.materializedFor(bench, version);
        const double dt = now() - t0;
        if (direct->instrCount() != events) {
            std::fprintf(stderr,
                         "FAIL: cold direct capture event count drifted\n");
            return 1;
        }
        if (!rep || dt < cold_direct_seconds)
            cold_direct_seconds = dt;
    }

    // Same-stream identity: run one captured event stream through both
    // cold paths — varint round trip (TraceWriter → parse → build) and
    // MaterializeSink — and demand byte-identical v2 images (buffers
    // and section checksums). Two live executions are not comparable
    // (heap placement shifts cache behavior), and the reader may have
    // come from the disk cache, so neither path consults the live
    // runtime for site metadata here; the per-pair metadata identity is
    // covered by test_materialize_sink.
    bool cold_identical = false;
    {
        trace::TraceWriter writer(reader->benchmark(), reader->version(),
                                  reader->configHash());
        reader->replayTo(writer);
        writer.finish(static_cast<const runtime::Cpu *>(nullptr));
        trace::TraceReader roundtrip;
        trace::MaterializedTrace built;
        trace::MaterializeSink sink(reader->benchmark(), reader->version(),
                                    reader->configHash());
        reader->replayTo(sink);
        trace::MaterializedTrace direct = sink.finish(nullptr);
        cold_identical = roundtrip.parse(writer.serialize())
                         && built.build(roundtrip)
                         && direct.serializeV2() == built.serializeV2();
    }

    // -- bit-identity gate: streaming == scalar == packed --
    bool identical = scalarSwept.size() == streamed.size()
                     && packedSwept.size() == streamed.size();
    for (size_t i = 0; identical && i < streamed.size(); ++i)
        identical = sameResult(scalarSwept[i], streamed[i])
                    && sameResult(packedSwept[i], streamed[i]);

    const double streaming_eps =
        static_cast<double>(events) / streaming_single;
    const double materialized_eps =
        static_cast<double>(events) / materialized_single;
    const double scalar_speedup =
        gate.streaming_seconds / gate.scalar_seconds;
    const double packed_speedup =
        gate.streaming_seconds / gate.packed_seconds;
    const double capture_eps = static_cast<double>(events) / capture_seconds;
    const double cold_capture_speedup =
        cold_varint_seconds / cold_direct_seconds;
    const double cold_varint_eps =
        static_cast<double>(events) / cold_varint_seconds;
    const double cold_direct_eps =
        static_cast<double>(events) / cold_direct_seconds;
    // Aggregate config-lanes-per-second of the packed pass: N configs
    // advance per event, so the kernel's useful work scales with N.
    const double packed_lane_eps =
        static_cast<double>(events) * static_cast<double>(gateConfigs)
        / gate.packed_seconds;

    std::printf("replay throughput — %s.%s, %llu events, %zu configs\n\n",
                bench, version, static_cast<unsigned long long>(events),
                gateConfigs);
    Table table({"path", "sweep ms", "single ms", "events/sec"});
    table.addRow({"streaming",
                  Table::fmtCount(static_cast<int64_t>(
                      gate.streaming_seconds * 1e3)),
                  Table::fmtCount(
                      static_cast<int64_t>(streaming_single * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(streaming_eps))});
    table.addRow({"materialized scalar",
                  Table::fmtCount(static_cast<int64_t>(
                      gate.scalar_seconds * 1e3)),
                  Table::fmtCount(
                      static_cast<int64_t>(materialized_single * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(materialized_eps))});
    table.addRow({"config-parallel",
                  Table::fmtCount(static_cast<int64_t>(
                      gate.packed_seconds * 1e3)),
                  "n/a",
                  Table::fmtCount(static_cast<int64_t>(packed_lane_eps))});
    table.addRow({"live capture", "n/a",
                  Table::fmtCount(
                      static_cast<int64_t>(capture_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(capture_eps))});
    table.addRow({"cold capture varint", "n/a",
                  Table::fmtCount(
                      static_cast<int64_t>(cold_varint_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(cold_varint_eps))});
    table.addRow({"cold capture direct", "n/a",
                  Table::fmtCount(
                      static_cast<int64_t>(cold_direct_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(cold_direct_eps))});
    table.print();

    std::printf("\nsweep scaling (ms, end-to-end incl. materialize)\n");
    Table scale({"configs", "streaming", "scalar", "config-parallel",
                 "speedup vs streaming"});
    for (const ScalePoint &p : scaling) {
        char speed[32];
        std::snprintf(speed, sizeof(speed), "%.2fx",
                      p.streaming_seconds / p.packed_seconds);
        scale.addRow({Table::fmtCount(static_cast<int64_t>(p.configs)),
                      Table::fmtCount(static_cast<int64_t>(
                          p.streaming_seconds * 1e3)),
                      Table::fmtCount(
                          static_cast<int64_t>(p.scalar_seconds * 1e3)),
                      Table::fmtCount(
                          static_cast<int64_t>(p.packed_seconds * 1e3)),
                      speed});
    }
    scale.print();

    std::printf("\nmaterialize cost      %.1f ms (%.1f MB resident)\n",
                build_seconds * 1e3,
                static_cast<double>(mat.byteSize()) / 1e6);
    std::printf("scalar sweep speedup  %.2fx (incl. materialize)\n",
                scalar_speedup);
    std::printf("packed sweep speedup  %.2fx (incl. materialize)\n",
                packed_speedup);
    std::printf("cold capture speedup  %.2fx (direct vs varint)\n",
                cold_capture_speedup);
    std::printf("results bit-identical %s\n", identical ? "yes" : "NO");
    std::printf("cold v2 bit-identical %s\n", cold_identical ? "yes" : "NO");

    std::FILE *json = std::fopen("BENCH_replay.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"benchmark\": \"%s.%s\",\n"
            "  \"scale\": %d,\n"
            "  \"events\": %llu,\n"
            "  \"configs\": %zu,\n"
            "  \"repetitions\": %d,\n"
            "  \"streaming\": {\n"
            "    \"sweep_seconds\": %.6f,\n"
            "    \"single_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f\n"
            "  },\n"
            "  \"materialized\": {\n"
            "    \"build_seconds\": %.6f,\n"
            "    \"sweep_seconds\": %.6f,\n"
            "    \"single_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f,\n"
            "    \"resident_bytes\": %zu\n"
            "  },\n"
            "  \"config_parallel\": {\n"
            "    \"sweep_seconds\": %.6f,\n"
            "    \"lane_events_per_sec\": %.0f,\n"
            "    \"speedup_vs_streaming\": %.3f\n"
            "  },\n"
            "  \"live_capture\": {\n"
            "    \"capture_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f\n"
            "  },\n"
            "  \"cold_capture\": {\n"
            "    \"varint_seconds\": %.6f,\n"
            "    \"direct_seconds\": %.6f,\n"
            "    \"speedup\": %.3f,\n"
            "    \"identical\": %s\n"
            "  },\n",
            bench, version, opts.scale,
            static_cast<unsigned long long>(events), gateConfigs,
            kRepetitions, gate.streaming_seconds, streaming_single,
            streaming_eps, build_seconds, gate.scalar_seconds,
            materialized_single, materialized_eps, mat.byteSize(),
            gate.packed_seconds, packed_lane_eps, packed_speedup,
            capture_seconds, capture_eps, cold_varint_seconds,
            cold_direct_seconds, cold_capture_speedup,
            cold_identical ? "true" : "false");
        std::fprintf(json, "  \"scaling\": [\n");
        for (size_t i = 0; i < scaling.size(); ++i) {
            const ScalePoint &p = scaling[i];
            std::fprintf(
                json,
                "    {\"configs\": %zu, \"streaming_seconds\": %.6f, "
                "\"scalar_seconds\": %.6f, \"packed_seconds\": %.6f, "
                "\"packed_speedup\": %.3f}%s\n",
                p.configs, p.streaming_seconds, p.scalar_seconds,
                p.packed_seconds, p.streaming_seconds / p.packed_seconds,
                i + 1 < scaling.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"sweep_speedup\": %.3f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     scalar_speedup, identical ? "true" : "false");
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_replay.json\n");
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: sweep paths diverged from streaming\n");
        return 1;
    }
    if (!cold_identical) {
        std::fprintf(stderr, "FAIL: direct capture v2 image diverged "
                             "from the varint reference\n");
        return 1;
    }
    if (scalar_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: materialized sweep slower than streaming "
                     "(%.2fx)\n",
                     scalar_speedup);
        return 1;
    }
#ifdef NDEBUG
    // The config-parallel perf gate (optimized builds only; debug and
    // sanitizer builds keep the identity gates but skip this one).
    const ScalePoint &wide = pointAt(12);
    const double wide_speedup = wide.streaming_seconds / wide.packed_seconds;
    if (wide_speedup < kPackedSpeedupGate) {
        std::fprintf(stderr,
                     "FAIL: config-parallel sweep at 12 configs only "
                     "%.2fx vs streaming (gate %.1fx)\n",
                     wide_speedup, kPackedSpeedupGate);
        return 1;
    }
#ifndef MMXDSP_FORCE_V1_CAPTURE
    // The cold-capture perf gate (optimized builds only; under
    // MMXDSP_FORCE_V1_CAPTURE both arms run the varint path, so only
    // the identity checks apply).
    if (cold_capture_speedup < kColdCaptureGate) {
        std::fprintf(stderr,
                     "FAIL: direct cold capture only %.2fx vs varint "
                     "(gate %.1fx)\n",
                     cold_capture_speedup, kColdCaptureGate);
        return 1;
    }
#endif
#endif
    return 0;
}
