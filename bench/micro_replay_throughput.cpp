/**
 * @file
 * Microbenchmark of the replay engine's two paths, and the regression
 * gate for the decode-once optimization:
 *
 *  - streaming: every configuration of a sweep decodes the serialized
 *    trace body again through trace::replayProfile (the baseline
 *    capture-once/replay-many semantics);
 *  - materialized: the body is decoded once into a
 *    trace::MaterializedTrace and every configuration replays from the
 *    shared structure-of-arrays buffers.
 *
 * Also times live capture (functional execution + block-buffered emit +
 * encoding, no timing model) of the same pair on a fresh suite, so the
 * capture-once cost can be read next to the replay-many cost.
 *
 * Reports single-replay throughput (events/sec) for both paths and the
 * wall time of an N-configuration sweep, verifies the two sweeps are
 * bit-identical, writes everything to BENCH_replay.json, and exits
 * nonzero if the results diverge or the materialized sweep is not
 * faster — so CI can run it as a perf smoke test.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "profile/vprof.hh"
#include "sim/pentium_timer.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "trace/materialize.hh"
#include "trace/replay.hh"

using namespace mmxdsp;

namespace {

constexpr int kRepetitions = 3;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The sweep grid: 12 memory-hierarchy configurations. */
std::vector<sim::TimerConfig>
makeConfigs()
{
    std::vector<sim::TimerConfig> configs;
    for (uint32_t l1_kb : {4, 8, 16, 32}) {
        for (uint32_t l2_kb : {128, 512, 2048}) {
            sim::TimerConfig config;
            config.l1.size_bytes = l1_kb * 1024;
            config.l2.size_bytes = l2_kb * 1024;
            configs.push_back(config);
        }
    }
    return configs;
}

bool
sameResult(const profile::ProfileResult &a, const profile::ProfileResult &b)
{
    if (a.cycles != b.cycles
        || a.dynamicInstructions != b.dynamicInstructions
        || a.staticInstructions != b.staticInstructions || a.uops != b.uops
        || a.memoryReferences != b.memoryReferences
        || a.mmxInstructions != b.mmxInstructions
        || a.mmxByCategory != b.mmxByCategory
        || a.functionCalls != b.functionCalls
        || a.callRetCycles != b.callRetCycles
        || a.callOverheadCycles != b.callOverheadCycles
        || a.opCounts != b.opCounts)
        return false;
    if (a.l1.accesses != b.l1.accesses || a.l1.misses != b.l1.misses
        || a.l2.accesses != b.l2.accesses || a.l2.misses != b.l2.misses
        || a.btb.branches != b.btb.branches
        || a.btb.mispredicts != b.btb.mispredicts)
        return false;
    if (a.functions.size() != b.functions.size())
        return false;
    for (const auto &[name, st] : a.functions) {
        auto it = b.functions.find(name);
        if (it == b.functions.end() || st.calls != it->second.calls
            || st.instructions != it->second.instructions
            || st.cycles != it->second.cycles)
            return false;
    }
    return true;
}

struct ArmTiming
{
    double sweep_seconds = 0.0;        ///< best-of-N sweep wall time
    double single_seconds = 0.0;       ///< best-of-N one-config replay
    double build_seconds = 0.0;        ///< materialize cost (0 = streaming)
};

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    harness::BenchmarkSuite suite = opts.makeSuite();

    const char *bench = "jpeg";
    const char *version = "c";
    std::fprintf(stderr, "capturing %s.%s trace (scale %d)...\n", bench,
                 version, opts.scale);
    auto reader = suite.traceFor(bench, version);
    const uint64_t events = reader->instrCount();
    const std::vector<sim::TimerConfig> configs = makeConfigs();

    // -- streaming arm: one full decode per configuration --
    ArmTiming streaming;
    std::vector<profile::ProfileResult> streamed(configs.size());
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        parallelFor(configs.size(), opts.threads, [&](size_t i) {
            streamed[i] = trace::replayProfile(*reader, configs[i]);
        });
        const double dt = now() - t0;
        if (!rep || dt < streaming.sweep_seconds)
            streaming.sweep_seconds = dt;
    }
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        trace::replayProfile(*reader);
        const double dt = now() - t0;
        if (!rep || dt < streaming.single_seconds)
            streaming.single_seconds = dt;
    }

    // -- materialized arm: decode once, share across the sweep --
    ArmTiming materialized;
    trace::MaterializedTrace mat;
    {
        const double t0 = now();
        if (!mat.build(*reader)) {
            std::fprintf(stderr, "FAIL: trace did not materialize\n");
            return 1;
        }
        materialized.build_seconds = now() - t0;
    }
    std::vector<profile::ProfileResult> fast;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        trace::MaterializedTrace shared;
        if (!shared.build(*reader))
            return 1;
        fast = shared.replaySweep(configs, opts.threads);
        const double dt = now() - t0;
        if (!rep || dt < materialized.sweep_seconds)
            materialized.sweep_seconds = dt;
    }
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double t0 = now();
        mat.replayProfile();
        const double dt = now() - t0;
        if (!rep || dt < materialized.single_seconds)
            materialized.single_seconds = dt;
    }

    // -- live-capture arm: execute + capture, no timing model --
    // A fresh suite with the disk cache off pays the full capture each
    // time: functional execution, block-buffered emit, encoding.
    double capture_seconds = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        harness::BenchmarkSuite live(opts.suiteConfig(),
                                     harness::TraceOptions{},
                                     opts.machineConfig());
        const double t0 = now();
        auto captured = live.traceFor(bench, version);
        const double dt = now() - t0;
        if (captured->instrCount() != events) {
            std::fprintf(stderr, "FAIL: live capture event count drifted\n");
            return 1;
        }
        if (!rep || dt < capture_seconds)
            capture_seconds = dt;
    }

    // -- bit-identity gate --
    bool identical = fast.size() == streamed.size();
    for (size_t i = 0; identical && i < fast.size(); ++i)
        identical = sameResult(fast[i], streamed[i]);

    const double streaming_eps =
        static_cast<double>(events) / streaming.single_seconds;
    const double materialized_eps =
        static_cast<double>(events) / materialized.single_seconds;
    const double speedup =
        streaming.sweep_seconds / materialized.sweep_seconds;
    const double capture_eps = static_cast<double>(events) / capture_seconds;

    std::printf("replay throughput — %s.%s, %llu events, %zu configs\n\n",
                bench, version, static_cast<unsigned long long>(events),
                configs.size());
    Table table({"path", "sweep ms", "single ms", "events/sec"});
    table.addRow({"streaming",
                  Table::fmtCount(static_cast<int64_t>(
                      streaming.sweep_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(
                      streaming.single_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(streaming_eps))});
    table.addRow({"materialized",
                  Table::fmtCount(static_cast<int64_t>(
                      materialized.sweep_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(
                      materialized.single_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(materialized_eps))});
    table.addRow({"live capture", "n/a",
                  Table::fmtCount(
                      static_cast<int64_t>(capture_seconds * 1e3)),
                  Table::fmtCount(static_cast<int64_t>(capture_eps))});
    table.print();
    std::printf("\nmaterialize cost      %.1f ms (%.1f MB resident)\n",
                materialized.build_seconds * 1e3,
                static_cast<double>(mat.byteSize()) / 1e6);
    std::printf("sweep speedup         %.2fx (incl. materialize)\n",
                speedup);
    std::printf("results bit-identical %s\n", identical ? "yes" : "NO");

    std::FILE *json = std::fopen("BENCH_replay.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"benchmark\": \"%s.%s\",\n"
            "  \"scale\": %d,\n"
            "  \"events\": %llu,\n"
            "  \"configs\": %zu,\n"
            "  \"repetitions\": %d,\n"
            "  \"streaming\": {\n"
            "    \"sweep_seconds\": %.6f,\n"
            "    \"single_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f\n"
            "  },\n"
            "  \"materialized\": {\n"
            "    \"build_seconds\": %.6f,\n"
            "    \"sweep_seconds\": %.6f,\n"
            "    \"single_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f,\n"
            "    \"resident_bytes\": %zu\n"
            "  },\n"
            "  \"live_capture\": {\n"
            "    \"capture_seconds\": %.6f,\n"
            "    \"events_per_sec\": %.0f\n"
            "  },\n"
            "  \"sweep_speedup\": %.3f,\n"
            "  \"identical\": %s\n"
            "}\n",
            bench, version, opts.scale,
            static_cast<unsigned long long>(events), configs.size(),
            kRepetitions, streaming.sweep_seconds,
            streaming.single_seconds, streaming_eps,
            materialized.build_seconds, materialized.sweep_seconds,
            materialized.single_seconds, materialized_eps, mat.byteSize(),
            capture_seconds, capture_eps, speedup,
            identical ? "true" : "false");
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_replay.json\n");
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: materialized sweep diverged from streaming\n");
        return 1;
    }
    if (speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: materialized sweep slower than streaming "
                     "(%.2fx)\n",
                     speedup);
        return 1;
    }
    return 0;
}
