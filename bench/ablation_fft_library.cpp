/**
 * @file
 * Ablation for the paper's FFT-library finding (section 4.1): the early
 * MMX library computed the FFT in 16-bit fixed point (40% MMX
 * instructions, only 1.49 speedup over C), while the shipping library
 * converts the samples to floating point internally (4.69% MMX, 1.98
 * speedup) — "computing the FFT with MMX integer calculations is not an
 * efficient strategy."
 *
 * Reports cycles, speedup over C, MMX share, and spectral precision for
 * all four FFT implementations at the paper's 4096-point size.
 */

#include <cmath>
#include <cstdio>

#include "harness/cli.hh"
#include "kernels/fft.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/table.hh"

using namespace mmxdsp;

namespace {

double
maxRelError(const std::vector<std::complex<double>> &got,
            const std::vector<std::complex<double>> &ref)
{
    double peak = 0.0;
    for (const auto &v : ref)
        peak = std::max(peak, std::abs(v));
    double err = 0.0;
    for (size_t i = 0; i < ref.size(); ++i)
        err = std::max(err, std::abs(got[i] - ref[i]));
    return err / peak;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    const int n = opts.suiteConfig().fft_size; // the paper's 4096 at scale 1
    kernels::FftBenchmark fft;
    fft.setup(n, 21);
    runtime::Cpu cpu;

    struct Row
    {
        const char *name;
        profile::ProfileResult profile;
        double rel_error;
    };
    std::vector<Row> rows;

    auto measure = [&](const char *name, auto &&run, auto &&out) {
        profile::VProf prof;
        cpu.attachSink(&prof);
        run();
        cpu.attachSink(nullptr);
        rows.push_back(Row{name, prof.result(),
                           maxRelError(out(), fft.reference())});
    };

    measure("fft.c (float, compiled C)", [&] { fft.runC(cpu); },
            [&] { return fft.outC(); });
    measure("fft.fp (float library)", [&] { fft.runFp(cpu); },
            [&] { return fft.outFp(); });
    measure("fft.mmx (shipping: float inside)", [&] { fft.runMmx(cpu); },
            [&] { return fft.outMmx(); });
    measure("fft.mmx_v1 (early: 16-bit BFP)", [&] { fft.runMmxV1(cpu); },
            [&] { return fft.outMmxV1(); });

    const double c_cycles = static_cast<double>(rows[0].profile.cycles);

    Table table({"Implementation", "cycles", "speedup vs C", "%MMX",
                 "max rel error"});
    for (const auto &r : rows) {
        table.addRow({r.name,
                      Table::fmtCount(static_cast<int64_t>(r.profile.cycles)),
                      Table::fmtFixed(c_cycles / r.profile.cycles, 2),
                      Table::fmtPercent(r.profile.pctMmx()),
                      Table::fmtFixed(r.rel_error, 5)});
    }
    std::printf("Ablation: the two generations of the MMX FFT library, "
                "%d points\n\n", n);
    table.print();
    std::printf("\nPaper: shipping library 4.69%% MMX / 1.98 speedup; "
                "early library ~40%% MMX / 1.49 speedup;\n"
                "fixed-point precision 'order 1e-2'.\n");
    return 0;
}
