/**
 * @file
 * Ablation for the paper's mode-switch observation (section 3.1): "The
 * emms (Empty MMX State) instruction that switches from MMX to
 * floating-point mode can incur up to a 50-cycle penalty." Because MMX
 * aliases the x87 registers, every MMX<->FP boundary needs an emms.
 *
 * Sweeps the number of MMX operations performed per mode switch and
 * reports the effective cost per useful operation — the amortization
 * curve that makes fine-grained library calls (each ending in emms)
 * expensive.
 */

#include <algorithm>
#include <cstdio>

#include "harness/cli.hh"
#include "profile/vprof.hh"
#include "runtime/cpu.hh"
#include "support/table.hh"

using namespace mmxdsp;
using runtime::Cpu;
using runtime::F64;
using runtime::M64;

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    Cpu cpu;
    alignas(8) int16_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    float fdata[2] = {1.5f, 2.5f};

    std::printf("Ablation: emms amortization — k MMX ops, emms, k x87 "
                "ops, repeated\n\n");
    Table table({"k (ops per switch)", "cycles/iter", "cycles per useful "
                 "op", "emms share"});
    for (int k : {1, 2, 4, 8, 16, 32, 64, 128}) {
        const int iters = std::max(16, 256 / opts.scale);
        profile::VProf prof;
        cpu.attachSink(&prof);
        for (int it = 0; it < iters; ++it) {
            M64 acc = cpu.movqLoad(data);
            for (int i = 0; i < k; ++i)
                acc = cpu.paddw(acc, acc);
            cpu.movqStore(data, acc);
            cpu.emms(); // leave MMX mode before touching x87
            F64 f = cpu.fld32(&fdata[0]);
            for (int i = 0; i < k; ++i)
                f = cpu.fadd(f, f);
            cpu.fstp32(&fdata[1], f);
        }
        cpu.attachSink(nullptr);
        double per_iter =
            static_cast<double>(prof.result().cycles) / iters;
        table.addRow({Table::fmtInt(k), Table::fmtFixed(per_iter, 1),
                      Table::fmtFixed(per_iter / (2.0 * k), 2),
                      Table::fmtPercent(50.0 / per_iter)});
    }
    table.print();
    std::printf("\nAt k=8 (a short library call's worth of work) the "
                "50-cycle emms still costs more than the work itself — "
                "the paper's 'switching between floating-point and MMX "
                "code' overhead.\n");
    return 0;
}
