/**
 * @file
 * Load generator and regression gate for vprofd's query engine.
 *
 * Three phases against one on-disk store:
 *
 *  1. populate — a fresh engine captures every (benchmark, version)
 *     pair of the suite live and publishes the traces as format v2
 *     (the corpus build; happens once per store lifetime), timing
 *     each capture individually for the cold-capture latency column;
 *  2. cold restart — a *new* engine on the same store must serve a
 *     batch across all pairs purely from mmap'd v2 entries: zero
 *     captures, and at most one store load per distinct trace (the
 *     compute-once/serve-many contract);
 *  3. steady state — a deterministic query mix (default 95% from a
 *     hot set of pair x machine combinations, 5% unique cold
 *     machines) measured per query: p50/p99 latency, queries/s, and
 *     the result-cache hit rate. Each latency sample is classified by
 *     how the query was served — hot-hit (result cache, no replay) or
 *     cold-replay (trace replayed for a new machine) — and reported
 *     as separate p50/p99 columns beside the cold-capture column from
 *     the populate phase.
 *
 * Also measures batch amortization (the same miss set answered by one
 * queryBatch() against per-query loops) and always verifies a served
 * profile bit-identical against a live BenchmarkSuite run of the same
 * pair. Gates: identity and zero-capture always; in optimized builds
 * the steady-state hit rate must be >= 0.90. Results land in
 * BENCH_vprofd.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "service/query_engine.hh"
#include "support/rng.hh"
#include "support/table.hh"

using namespace mmxdsp;

namespace {

constexpr double kHitRateGate = 0.90; ///< steady-state, Release only

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The hot machine set: the two paper models plus two common variants
 *  (a small L1 and a small BTB), all distinct under machineHash(). */
std::vector<sim::MachineConfig>
hotMachines()
{
    std::vector<sim::MachineConfig> machines;
    machines.push_back({sim::ModelKind::P5, sim::TimerConfig{}});
    machines.push_back({sim::ModelKind::P6, sim::TimerConfig{}});
    sim::MachineConfig small_l1{sim::ModelKind::P5, sim::TimerConfig{}};
    small_l1.timer.l1.size_bytes = 8 * 1024;
    machines.push_back(small_l1);
    sim::MachineConfig small_btb{sim::ModelKind::P6, sim::TimerConfig{}};
    small_btb.timer.btb_entries = 128;
    machines.push_back(small_btb);
    return machines;
}

/** A cold machine nobody else asks about: a unique L2-miss penalty per
 *  id (machineHash() sees every field, so any distinct value is a
 *  distinct result-cache key, and penalties carry no power-of-two
 *  constraint the way cache/BTB geometries do). */
sim::MachineConfig
coldMachine(uint32_t id)
{
    sim::MachineConfig machine{sim::ModelKind::P5, sim::TimerConfig{}};
    machine.timer.penalties.l2_miss = 8 + id;
    return machine;
}

bool
sameResult(const profile::ProfileResult &a, const profile::ProfileResult &b)
{
    return a.cycles == b.cycles
           && a.dynamicInstructions == b.dynamicInstructions
           && a.staticInstructions == b.staticInstructions
           && a.uops == b.uops && a.memoryReferences == b.memoryReferences
           && a.mmxInstructions == b.mmxInstructions
           && a.mmxByCategory == b.mmxByCategory
           && a.functionCalls == b.functionCalls
           && a.callRetCycles == b.callRetCycles
           && a.callOverheadCycles == b.callOverheadCycles
           && a.opCounts == b.opCounts
           && a.l1.misses == b.l1.misses && a.l2.misses == b.l2.misses
           && a.btb.mispredicts == b.btb.mispredicts;
}

} // namespace

int
main(int argc, char **argv)
{
    // Own flags first; parseBenchArgs exits on anything unknown.
    size_t n_queries = 4000;
    double hot_fraction = 0.95;
    std::string store_root = "vprofd_store_bench";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--queries=", 10) == 0) {
            n_queries = static_cast<size_t>(std::atol(argv[i] + 10));
        } else if (std::strncmp(argv[i], "--hot=", 6) == 0) {
            hot_fraction = std::atof(argv[i] + 6);
        } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
            store_root = argv[i] + 8;
        } else {
            args.push_back(argv[i]);
        }
    }
    harness::BenchOptions opts = harness::parseBenchArgs(
        static_cast<int>(args.size()), args.data());

    // A fresh store each run: this binary measures the service, not
    // leftovers from the previous invocation.
    std::error_code ec;
    std::filesystem::remove_all(store_root, ec);

    service::EngineOptions eopts;
    eopts.store.root = store_root;
    eopts.suite = opts.suiteConfig();
    eopts.threads = opts.threads;

    const auto pairs = harness::BenchmarkSuite::allRuns();
    const auto machines = hotMachines();

    // Hot set: every pair x every hot machine.
    std::vector<service::Query> hot;
    for (const auto &[bench, version] : pairs)
        for (const sim::MachineConfig &machine : machines)
            hot.push_back({bench, version, machine});

    // -- phase 1: populate the corpus (live capture + v2 publish) --
    // One query per pair, timed individually: every one is a distinct
    // trace absent from the fresh store, so each sample is exactly one
    // cold capture (execute + materialize + publish).
    std::fprintf(stderr, "populating %zu traces (scale %d)...\n",
                 pairs.size(), opts.scale);
    double populate_seconds = 0.0;
    std::vector<double> capture_lat;
    capture_lat.reserve(pairs.size());
    {
        service::QueryEngine engine(eopts);
        for (const auto &[bench, version] : pairs) {
            const double t0 = now();
            auto r = engine.query({bench, version, machines[0]});
            const double dt = now() - t0;
            if (!r.ok) {
                std::fprintf(stderr, "FAIL: populate: %s\n",
                             r.error.c_str());
                return 1;
            }
            if (!r.trace_captured) {
                std::fprintf(stderr,
                             "FAIL: populate served %s/%s without a "
                             "capture on a fresh store\n",
                             bench.c_str(), version.c_str());
                return 1;
            }
            capture_lat.push_back(dt);
            populate_seconds += dt;
        }
        if (engine.stats().captures != pairs.size()) {
            std::fprintf(stderr,
                         "FAIL: expected %zu captures, got %llu\n",
                         pairs.size(),
                         static_cast<unsigned long long>(
                             engine.stats().captures));
            return 1;
        }
    }

    // -- phase 2: cold restart must serve from mmap'd v2 only --
    service::EngineOptions ropts = eopts;
    ropts.allow_capture = false;
    service::QueryEngine engine(ropts);
    double warm_batch_seconds = 0.0;
    {
        const double t0 = now();
        auto results = engine.queryBatch(hot);
        warm_batch_seconds = now() - t0;
        for (const auto &r : results)
            if (!r.ok) {
                std::fprintf(stderr, "FAIL: warm batch: %s\n",
                             r.error.c_str());
                return 1;
            }
    }
    const service::EngineStats warm = engine.stats();
    const service::StoreStats store_warm = engine.store().stats();
    if (warm.captures != 0) {
        std::fprintf(stderr, "FAIL: warm store still captured live\n");
        return 1;
    }
    if (store_warm.v2_hits > pairs.size() || store_warm.v1_hits != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu store loads for %zu distinct traces "
                     "(re-decode instead of serve-from-memory)\n",
                     static_cast<unsigned long long>(store_warm.v2_hits),
                     pairs.size());
        return 1;
    }

    // -- identity: a served profile must be bit-identical to an
    //    independent mmap load of the same entry replayed through the
    //    scalar reference kernel (the engine serves through the packed
    //    sweep kernel, so this crosses both the load and replay paths;
    //    note two *live executions* are not comparable here — recorded
    //    heap addresses differ run to run, and cache behavior follows).
    {
        service::TraceStore check(ropts.store);
        auto mat = check.load(pairs.front().first, pairs.front().second,
                              eopts.suite.hash());
        if (!mat) {
            std::fprintf(stderr, "FAIL: identity trace missing\n");
            return 1;
        }
        const profile::ProfileResult expect =
            mat->replayProfile(machines[0]);
        auto served = engine.query(
            {pairs.front().first, pairs.front().second, machines[0]});
        if (!served.ok || !sameResult(served.profile, expect)) {
            std::fprintf(stderr,
                         "FAIL: served profile diverges from scalar "
                         "replay of the stored trace\n");
            return 1;
        }
    }

    // -- phase 3: steady-state latency distribution --
    const service::EngineStats pre_steady = engine.stats();
    Rng rng(0x5eed5eedull);
    std::vector<double> latencies;
    latencies.reserve(n_queries);
    std::vector<double> hot_lat;    ///< served from the result cache
    std::vector<double> replay_lat; ///< replayed a resident/mmap'd trace
    hot_lat.reserve(n_queries);
    replay_lat.reserve(n_queries);
    size_t cold_id = 0;
    const double t_steady = now();
    for (size_t i = 0; i < n_queries; ++i) {
        service::Query q;
        if (rng.nextDouble() < hot_fraction) {
            q = hot[rng.nextBelow(static_cast<uint32_t>(hot.size()))];
        } else {
            const auto &[bench, version] =
                pairs[rng.nextBelow(static_cast<uint32_t>(pairs.size()))];
            q = {bench, version,
                 coldMachine(static_cast<uint32_t>(cold_id++))};
        }
        const double t0 = now();
        auto r = engine.query(q);
        const double dt = now() - t0;
        latencies.push_back(dt);
        (r.from_result_cache ? hot_lat : replay_lat).push_back(dt);
        if (!r.ok) {
            std::fprintf(stderr, "FAIL: steady-state query failed: %s\n",
                         r.error.c_str());
            return 1;
        }
    }
    const double steady_seconds = now() - t_steady;
    const service::EngineStats stats = engine.stats();

    const auto pctOf = [](std::vector<double> &v, double p) {
        if (v.empty())
            return 0.0;
        const size_t idx = std::min(
            v.size() - 1,
            static_cast<size_t>(p * static_cast<double>(v.size())));
        return v[idx];
    };
    std::sort(latencies.begin(), latencies.end());
    std::sort(hot_lat.begin(), hot_lat.end());
    std::sort(replay_lat.begin(), replay_lat.end());
    std::sort(capture_lat.begin(), capture_lat.end());
    const double p50 = pctOf(latencies, 0.50), p99 = pctOf(latencies, 0.99);
    const double hot_p50 = pctOf(hot_lat, 0.50);
    const double hot_p99 = pctOf(hot_lat, 0.99);
    const double replay_p50 = pctOf(replay_lat, 0.50);
    const double replay_p99 = pctOf(replay_lat, 0.99);
    const double capture_p50 = pctOf(capture_lat, 0.50);
    const double capture_p99 = pctOf(capture_lat, 0.99);
    const double qps = static_cast<double>(n_queries) / steady_seconds;
    const uint64_t steady_queries = stats.queries - pre_steady.queries;
    const uint64_t steady_hits =
        stats.result_hits - pre_steady.result_hits;
    const double hit_rate = steady_queries
                                ? static_cast<double>(steady_hits)
                                      / static_cast<double>(steady_queries)
                                : 0.0;

    // -- batch amortization: the warm miss set, batch vs singles --
    double single_seconds = 0.0;
    {
        service::QueryEngine fresh(ropts);
        const double t0 = now();
        for (const service::Query &q : hot)
            if (!fresh.query(q).ok)
                return 1;
        single_seconds = now() - t0;
    }
    const double batch_speedup = single_seconds / warm_batch_seconds;

    std::printf("vprofd service load — %zu pairs, %zu hot queries, "
                "%zu total, scale %d\n\n",
                pairs.size(), hot.size(), n_queries, opts.scale);
    Table table({"metric", "value"});
    table.addRow({"populate (19 captures)",
                  Table::fmtCount(
                      static_cast<int64_t>(populate_seconds * 1e3))});
    table.addRow({"warm batch ms",
                  Table::fmtCount(
                      static_cast<int64_t>(warm_batch_seconds * 1e3))});
    table.addRow(
        {"p50 latency us",
         Table::fmtCount(static_cast<int64_t>(p50 * 1e6))});
    table.addRow(
        {"p99 latency us",
         Table::fmtCount(static_cast<int64_t>(p99 * 1e6))});
    table.addRow(
        {"hot-hit p50/p99 us",
         Table::fmtCount(static_cast<int64_t>(hot_p50 * 1e6)) + " / "
             + Table::fmtCount(static_cast<int64_t>(hot_p99 * 1e6))});
    table.addRow(
        {"cold-replay p50/p99 us",
         Table::fmtCount(static_cast<int64_t>(replay_p50 * 1e6)) + " / "
             + Table::fmtCount(static_cast<int64_t>(replay_p99 * 1e6))});
    table.addRow(
        {"cold-capture p50/p99 ms",
         Table::fmtCount(static_cast<int64_t>(capture_p50 * 1e3)) + " / "
             + Table::fmtCount(static_cast<int64_t>(capture_p99 * 1e3))});
    table.addRow({"queries/s",
                  Table::fmtCount(static_cast<int64_t>(qps))});
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f%%", hit_rate * 100.0);
    table.addRow({"result-cache hit rate", rate});
    char amort[32];
    std::snprintf(amort, sizeof(amort), "%.2fx", batch_speedup);
    table.addRow({"batch vs single", amort});
    table.print();

    std::printf("\nstore: %llu entries, %.1f MB, %llu mmap loads, "
                "0 captures after restart\n",
                static_cast<unsigned long long>(
                    engine.store().entryCount()),
                static_cast<double>(engine.store().totalBytes()) / 1e6,
                static_cast<unsigned long long>(
                    engine.store().stats().v2_hits));

    std::FILE *json = std::fopen("BENCH_vprofd.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"pairs\": %zu,\n"
            "  \"scale\": %d,\n"
            "  \"hot_set\": %zu,\n"
            "  \"queries\": %zu,\n"
            "  \"hot_fraction\": %.3f,\n"
            "  \"populate_seconds\": %.6f,\n"
            "  \"warm_batch_seconds\": %.6f,\n"
            "  \"p50_seconds\": %.9f,\n"
            "  \"p99_seconds\": %.9f,\n"
            "  \"cold_capture_p50_seconds\": %.6f,\n"
            "  \"cold_capture_p99_seconds\": %.6f,\n"
            "  \"cold_capture_count\": %zu,\n"
            "  \"cold_replay_p50_seconds\": %.9f,\n"
            "  \"cold_replay_p99_seconds\": %.9f,\n"
            "  \"cold_replay_count\": %zu,\n"
            "  \"hot_hit_p50_seconds\": %.9f,\n"
            "  \"hot_hit_p99_seconds\": %.9f,\n"
            "  \"hot_hit_count\": %zu,\n"
            "  \"queries_per_sec\": %.1f,\n"
            "  \"hit_rate\": %.4f,\n"
            "  \"batch_speedup\": %.3f,\n"
            "  \"store_entries\": %llu,\n"
            "  \"store_bytes\": %llu,\n"
            "  \"store_mmap_loads\": %llu,\n"
            "  \"captures_after_restart\": %llu\n"
            "}\n",
            pairs.size(), opts.scale, hot.size(), n_queries, hot_fraction,
            populate_seconds, warm_batch_seconds, p50, p99,
            capture_p50, capture_p99, capture_lat.size(),
            replay_p50, replay_p99, replay_lat.size(),
            hot_p50, hot_p99, hot_lat.size(),
            qps, hit_rate, batch_speedup,
            static_cast<unsigned long long>(engine.store().entryCount()),
            static_cast<unsigned long long>(engine.store().totalBytes()),
            static_cast<unsigned long long>(
                engine.store().stats().v2_hits),
            static_cast<unsigned long long>(stats.captures));
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_vprofd.json\n");
    }

#ifdef NDEBUG
    if (hit_rate < kHitRateGate) {
        std::fprintf(stderr,
                     "FAIL: steady-state hit rate %.1f%% below gate "
                     "%.0f%%\n",
                     hit_rate * 100.0, kHitRateGate * 100.0);
        return 1;
    }
#endif
    return 0;
}
