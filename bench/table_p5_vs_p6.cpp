/**
 * @file
 * The paper's machines side by side, from one captured trace.
 *
 * The paper characterizes every benchmark on the Pentium (cycle counts,
 * its Table 2/3 speedups) and on the Pentium II (dynamic micro-op
 * counts) but never runs the timing comparison between them. This bench
 * closes that gap: each (benchmark, version) trace is captured once and
 * replayed under all three sim::TimingModel backends — P5 (in-order
 * dual pipe), P6 (uop decode/issue front end), and P6P (P6 plus
 * single-issue execution ports and a dispatch window) — giving
 * per-benchmark cycles, CPI, cycles-per-uop, and the MMX-vs-C speedup
 * as each machine sees it.
 *
 * Also the regression gate for the model layer: for every pair, the P5
 * entry of the cross-model sweep must be bit-identical to the plain P5
 * replay, and the P6 and P6P materialized results must each be
 * bit-identical to a streaming replay of the same trace on that model.
 * Exits nonzero on any divergence, and writes BENCH_p5_vs_p6.json for
 * CI artifact upload.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/suite.hh"
#include "profile/vprof.hh"
#include "sim/timing_model.hh"
#include "support/table.hh"
#include "trace/materialize.hh"
#include "trace/replay.hh"

using namespace mmxdsp;
using harness::BenchmarkSuite;

namespace {

bool
sameResult(const profile::ProfileResult &a, const profile::ProfileResult &b)
{
    if (a.cycles != b.cycles
        || a.dynamicInstructions != b.dynamicInstructions
        || a.staticInstructions != b.staticInstructions || a.uops != b.uops
        || a.memoryReferences != b.memoryReferences
        || a.mmxInstructions != b.mmxInstructions
        || a.functionCalls != b.functionCalls
        || a.callRetCycles != b.callRetCycles
        || a.callOverheadCycles != b.callOverheadCycles
        || a.opCounts != b.opCounts)
        return false;
    return a.timer.instructions == b.timer.instructions
           && a.timer.pairs == b.timer.pairs
           && a.timer.uopsIssued == b.timer.uopsIssued
           && a.timer.retireStallCycles == b.timer.retireStallCycles
           && a.timer.portStallCycles == b.timer.portStallCycles
           && a.l1.misses == b.l1.misses && a.l2.misses == b.l2.misses
           && a.btb.mispredicts == b.btb.mispredicts;
}

double
cpi(uint64_t cycles, uint64_t n)
{
    return n ? static_cast<double>(cycles) / static_cast<double>(n) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchOptions opts = harness::parseBenchArgs(argc, argv);
    BenchmarkSuite suite = opts.makeSuite();

    const sim::MachineConfig p5{sim::ModelKind::P5, sim::TimerConfig{}};
    const sim::MachineConfig p6{sim::ModelKind::P6, sim::TimerConfig{}};
    const sim::MachineConfig p6p{sim::ModelKind::P6P, sim::TimerConfig{}};

    struct Row
    {
        std::string benchmark;
        std::string version;
        profile::ProfileResult p5;
        profile::ProfileResult p6;
        profile::ProfileResult p6p;
    };
    std::vector<Row> rows;
    bool identical = true;

    for (const auto &[benchmark, version] : BenchmarkSuite::allRuns()) {
        auto mat = suite.materializedFor(benchmark, version);

        // One cross-model sweep per pair: all three entries share the
        // trace buffers and (same BTB geometry) one prediction pass.
        std::vector<profile::ProfileResult> swept = mat->replaySweep(
            std::vector<sim::MachineConfig>{p5, p6, p6p}, opts.threads);

        // Gate 1: the sweep's P5 entry matches the plain P5 replay.
        if (!sameResult(swept[0], mat->replayProfile(sim::TimerConfig{}))) {
            std::fprintf(stderr,
                         "FAIL: %s.%s cross-model sweep P5 entry diverged "
                         "from plain P5 replay\n",
                         benchmark.c_str(), version.c_str());
            identical = false;
        }
        // Gates 2 and 3: materialized P6/P6P match the streaming
        // replays of the same trace on those models.
        auto reader = suite.traceFor(benchmark, version);
        if (!sameResult(swept[1], trace::replayProfile(*reader, p6))) {
            std::fprintf(stderr,
                         "FAIL: %s.%s materialized P6 replay diverged "
                         "from streaming P6 replay\n",
                         benchmark.c_str(), version.c_str());
            identical = false;
        }
        if (!sameResult(swept[2], trace::replayProfile(*reader, p6p))) {
            std::fprintf(stderr,
                         "FAIL: %s.%s materialized P6P replay diverged "
                         "from streaming P6P replay\n",
                         benchmark.c_str(), version.c_str());
            identical = false;
        }

        rows.push_back({benchmark, version, std::move(swept[0]),
                        std::move(swept[1]), std::move(swept[2])});
    }

    std::printf("P5 vs P6 vs P6P: one captured trace per pair, replayed "
                "on all three machines\n\n");
    Table table({"Program", "instrs", "uops", "P5 cyc", "P6 cyc",
                 "P6P cyc", "P5 CPI", "P6 CPI", "P6P CPI", "port stall",
                 "P5/P6P"});
    for (const Row &row : rows) {
        table.addRow(
            {row.benchmark + "." + row.version,
             Table::fmtCount(
                 static_cast<int64_t>(row.p5.dynamicInstructions)),
             Table::fmtCount(static_cast<int64_t>(row.p5.uops)),
             Table::fmtCount(static_cast<int64_t>(row.p5.cycles)),
             Table::fmtCount(static_cast<int64_t>(row.p6.cycles)),
             Table::fmtCount(static_cast<int64_t>(row.p6p.cycles)),
             Table::fmtFixed(cpi(row.p5.cycles, row.p5.dynamicInstructions),
                             2),
             Table::fmtFixed(cpi(row.p6.cycles, row.p6.dynamicInstructions),
                             2),
             Table::fmtFixed(
                 cpi(row.p6p.cycles, row.p6p.dynamicInstructions), 2),
             Table::fmtCount(
                 static_cast<int64_t>(row.p6p.timer.portStallCycles)),
             Table::fmtRatio(cpi(row.p5.cycles, row.p6p.cycles))});
    }
    table.print();

    // The MMX payoff as each machine sees it (the paper's speedups are
    // all P5; the P6's pipelined multiplier and wider issue shift them,
    // and the P6P's port contention pulls part of that back).
    auto find = [&rows](const std::string &benchmark,
                        const std::string &version) -> const Row * {
        for (const Row &row : rows)
            if (row.benchmark == benchmark && row.version == version)
                return &row;
        return nullptr;
    };
    std::printf("\nMMX-vs-C speedup on each machine:\n\n");
    Table speedups({"Benchmark", "P5 speedup", "P6 speedup", "P6P speedup"});
    for (const char *benchmark :
         {"fft", "fir", "iir", "matvec", "radar", "g722", "jpeg", "image"}) {
        const Row *c = find(benchmark, "c");
        const Row *mmx = find(benchmark, "mmx");
        speedups.addRow(
            {benchmark,
             Table::fmtRatio(cpi(c->p5.cycles, mmx->p5.cycles)),
             Table::fmtRatio(cpi(c->p6.cycles, mmx->p6.cycles)),
             Table::fmtRatio(cpi(c->p6p.cycles, mmx->p6p.cycles))});
    }
    speedups.print();
    std::printf("\nresults bit-identical %s\n", identical ? "yes" : "NO");

    std::FILE *json = std::fopen("BENCH_p5_vs_p6.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"scale\": %d,\n  \"pairs\": [\n",
                     opts.scale);
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            std::fprintf(
                json,
                "    {\"name\": \"%s.%s\", \"instructions\": %llu, "
                "\"uops\": %llu, \"p5_cycles\": %llu, "
                "\"p6_cycles\": %llu, \"p6p_cycles\": %llu, "
                "\"p6_retire_stalls\": %llu, "
                "\"p6p_port_stalls\": %llu}%s\n",
                row.benchmark.c_str(), row.version.c_str(),
                static_cast<unsigned long long>(row.p5.dynamicInstructions),
                static_cast<unsigned long long>(row.p5.uops),
                static_cast<unsigned long long>(row.p5.cycles),
                static_cast<unsigned long long>(row.p6.cycles),
                static_cast<unsigned long long>(row.p6p.cycles),
                static_cast<unsigned long long>(
                    row.p6.timer.retireStallCycles),
                static_cast<unsigned long long>(
                    row.p6p.timer.portStallCycles),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n  \"identical\": %s\n}\n",
                     identical ? "true" : "false");
        std::fclose(json);
        std::fprintf(stderr, "wrote BENCH_p5_vs_p6.json\n");
    }

    return identical ? 0 : 1;
}
