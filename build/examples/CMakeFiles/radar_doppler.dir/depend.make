# Empty dependencies file for radar_doppler.
# This may be replaced when dependencies are built.
