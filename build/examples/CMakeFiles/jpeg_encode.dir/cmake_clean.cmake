file(REMOVE_RECURSE
  "CMakeFiles/jpeg_encode.dir/jpeg_encode.cc.o"
  "CMakeFiles/jpeg_encode.dir/jpeg_encode.cc.o.d"
  "jpeg_encode"
  "jpeg_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
