# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_mmx_ops[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_nsp[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_g722[1]_include.cmake")
include("/root/repo/build/tests/test_jpeg[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_trace_isa[1]_include.cmake")
