# Empty compiler generated dependencies file for test_g722.
# This may be replaced when dependencies are built.
