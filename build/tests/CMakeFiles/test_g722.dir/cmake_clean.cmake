file(REMOVE_RECURSE
  "CMakeFiles/test_g722.dir/test_g722.cc.o"
  "CMakeFiles/test_g722.dir/test_g722.cc.o.d"
  "test_g722"
  "test_g722.pdb"
  "test_g722[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_g722.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
