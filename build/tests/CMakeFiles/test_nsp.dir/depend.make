# Empty dependencies file for test_nsp.
# This may be replaced when dependencies are built.
