file(REMOVE_RECURSE
  "CMakeFiles/test_nsp.dir/test_nsp.cc.o"
  "CMakeFiles/test_nsp.dir/test_nsp.cc.o.d"
  "test_nsp"
  "test_nsp.pdb"
  "test_nsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
