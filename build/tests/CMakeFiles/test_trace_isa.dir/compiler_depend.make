# Empty compiler generated dependencies file for test_trace_isa.
# This may be replaced when dependencies are built.
