file(REMOVE_RECURSE
  "CMakeFiles/test_trace_isa.dir/test_trace_isa.cc.o"
  "CMakeFiles/test_trace_isa.dir/test_trace_isa.cc.o.d"
  "test_trace_isa"
  "test_trace_isa.pdb"
  "test_trace_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
