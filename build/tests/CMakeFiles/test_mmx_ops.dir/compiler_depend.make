# Empty compiler generated dependencies file for test_mmx_ops.
# This may be replaced when dependencies are built.
