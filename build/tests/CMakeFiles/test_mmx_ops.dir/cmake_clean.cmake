file(REMOVE_RECURSE
  "CMakeFiles/test_mmx_ops.dir/test_mmx_ops.cc.o"
  "CMakeFiles/test_mmx_ops.dir/test_mmx_ops.cc.o.d"
  "test_mmx_ops"
  "test_mmx_ops.pdb"
  "test_mmx_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmx_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
