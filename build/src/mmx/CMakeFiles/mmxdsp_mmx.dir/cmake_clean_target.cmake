file(REMOVE_RECURSE
  "libmmxdsp_mmx.a"
)
