# Empty compiler generated dependencies file for mmxdsp_mmx.
# This may be replaced when dependencies are built.
