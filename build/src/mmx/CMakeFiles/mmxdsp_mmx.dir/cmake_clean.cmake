file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_mmx.dir/mmx_ops.cc.o"
  "CMakeFiles/mmxdsp_mmx.dir/mmx_ops.cc.o.d"
  "libmmxdsp_mmx.a"
  "libmmxdsp_mmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_mmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
