
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nsp/alloc.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/alloc.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/alloc.cc.o.d"
  "/root/repo/src/nsp/dct.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/dct.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/dct.cc.o.d"
  "/root/repo/src/nsp/fft.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/fft.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/fft.cc.o.d"
  "/root/repo/src/nsp/filter.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/filter.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/filter.cc.o.d"
  "/root/repo/src/nsp/image.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/image.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/image.cc.o.d"
  "/root/repo/src/nsp/internal.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/internal.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/internal.cc.o.d"
  "/root/repo/src/nsp/vector.cc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/vector.cc.o" "gcc" "src/nsp/CMakeFiles/mmxdsp_nsp.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mmxdsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmxdsp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mmx/CMakeFiles/mmxdsp_mmx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmxdsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mmxdsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mmxdsp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
