file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_nsp.dir/alloc.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/alloc.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/dct.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/dct.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/fft.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/fft.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/filter.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/filter.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/image.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/image.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/internal.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/internal.cc.o.d"
  "CMakeFiles/mmxdsp_nsp.dir/vector.cc.o"
  "CMakeFiles/mmxdsp_nsp.dir/vector.cc.o.d"
  "libmmxdsp_nsp.a"
  "libmmxdsp_nsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_nsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
