# Empty dependencies file for mmxdsp_nsp.
# This may be replaced when dependencies are built.
