file(REMOVE_RECURSE
  "libmmxdsp_nsp.a"
)
