file(REMOVE_RECURSE
  "libmmxdsp_sim.a"
)
