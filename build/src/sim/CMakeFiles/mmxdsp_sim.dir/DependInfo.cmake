
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/pentium_timer.cc" "src/sim/CMakeFiles/mmxdsp_sim.dir/pentium_timer.cc.o" "gcc" "src/sim/CMakeFiles/mmxdsp_sim.dir/pentium_timer.cc.o.d"
  "/root/repo/src/sim/uop.cc" "src/sim/CMakeFiles/mmxdsp_sim.dir/uop.cc.o" "gcc" "src/sim/CMakeFiles/mmxdsp_sim.dir/uop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mmxdsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mmxdsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmxdsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
