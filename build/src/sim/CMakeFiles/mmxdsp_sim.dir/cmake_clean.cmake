file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_sim.dir/pentium_timer.cc.o"
  "CMakeFiles/mmxdsp_sim.dir/pentium_timer.cc.o.d"
  "CMakeFiles/mmxdsp_sim.dir/uop.cc.o"
  "CMakeFiles/mmxdsp_sim.dir/uop.cc.o.d"
  "libmmxdsp_sim.a"
  "libmmxdsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
