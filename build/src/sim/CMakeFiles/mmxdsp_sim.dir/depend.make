# Empty dependencies file for mmxdsp_sim.
# This may be replaced when dependencies are built.
