file(REMOVE_RECURSE
  "libmmxdsp_isa.a"
)
