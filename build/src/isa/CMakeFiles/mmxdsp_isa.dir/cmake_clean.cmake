file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_isa.dir/op.cc.o"
  "CMakeFiles/mmxdsp_isa.dir/op.cc.o.d"
  "libmmxdsp_isa.a"
  "libmmxdsp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
