# Empty dependencies file for mmxdsp_isa.
# This may be replaced when dependencies are built.
