
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cpu.cc" "src/runtime/CMakeFiles/mmxdsp_runtime.dir/cpu.cc.o" "gcc" "src/runtime/CMakeFiles/mmxdsp_runtime.dir/cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mmxdsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mmx/CMakeFiles/mmxdsp_mmx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmxdsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mmxdsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmxdsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
