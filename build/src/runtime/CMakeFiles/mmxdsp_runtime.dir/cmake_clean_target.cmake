file(REMOVE_RECURSE
  "libmmxdsp_runtime.a"
)
