file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_runtime.dir/cpu.cc.o"
  "CMakeFiles/mmxdsp_runtime.dir/cpu.cc.o.d"
  "libmmxdsp_runtime.a"
  "libmmxdsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
