# Empty dependencies file for mmxdsp_runtime.
# This may be replaced when dependencies are built.
