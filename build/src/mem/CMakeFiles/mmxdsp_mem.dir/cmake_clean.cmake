file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_mem.dir/btb.cc.o"
  "CMakeFiles/mmxdsp_mem.dir/btb.cc.o.d"
  "CMakeFiles/mmxdsp_mem.dir/cache.cc.o"
  "CMakeFiles/mmxdsp_mem.dir/cache.cc.o.d"
  "libmmxdsp_mem.a"
  "libmmxdsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
