file(REMOVE_RECURSE
  "libmmxdsp_mem.a"
)
