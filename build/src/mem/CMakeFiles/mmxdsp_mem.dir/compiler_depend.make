# Empty compiler generated dependencies file for mmxdsp_mem.
# This may be replaced when dependencies are built.
