file(REMOVE_RECURSE
  "libmmxdsp_support.a"
)
