# Empty compiler generated dependencies file for mmxdsp_support.
# This may be replaced when dependencies are built.
