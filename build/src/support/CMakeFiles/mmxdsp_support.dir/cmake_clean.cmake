file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_support.dir/fixed_point.cc.o"
  "CMakeFiles/mmxdsp_support.dir/fixed_point.cc.o.d"
  "CMakeFiles/mmxdsp_support.dir/logging.cc.o"
  "CMakeFiles/mmxdsp_support.dir/logging.cc.o.d"
  "CMakeFiles/mmxdsp_support.dir/rng.cc.o"
  "CMakeFiles/mmxdsp_support.dir/rng.cc.o.d"
  "CMakeFiles/mmxdsp_support.dir/signal_math.cc.o"
  "CMakeFiles/mmxdsp_support.dir/signal_math.cc.o.d"
  "CMakeFiles/mmxdsp_support.dir/table.cc.o"
  "CMakeFiles/mmxdsp_support.dir/table.cc.o.d"
  "libmmxdsp_support.a"
  "libmmxdsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
