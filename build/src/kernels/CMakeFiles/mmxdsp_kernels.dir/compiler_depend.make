# Empty compiler generated dependencies file for mmxdsp_kernels.
# This may be replaced when dependencies are built.
