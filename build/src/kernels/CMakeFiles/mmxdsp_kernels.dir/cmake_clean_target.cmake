file(REMOVE_RECURSE
  "libmmxdsp_kernels.a"
)
