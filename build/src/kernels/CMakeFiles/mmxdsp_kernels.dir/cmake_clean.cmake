file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_kernels.dir/fft.cc.o"
  "CMakeFiles/mmxdsp_kernels.dir/fft.cc.o.d"
  "CMakeFiles/mmxdsp_kernels.dir/fir.cc.o"
  "CMakeFiles/mmxdsp_kernels.dir/fir.cc.o.d"
  "CMakeFiles/mmxdsp_kernels.dir/iir.cc.o"
  "CMakeFiles/mmxdsp_kernels.dir/iir.cc.o.d"
  "CMakeFiles/mmxdsp_kernels.dir/matvec.cc.o"
  "CMakeFiles/mmxdsp_kernels.dir/matvec.cc.o.d"
  "CMakeFiles/mmxdsp_kernels.dir/motion.cc.o"
  "CMakeFiles/mmxdsp_kernels.dir/motion.cc.o.d"
  "libmmxdsp_kernels.a"
  "libmmxdsp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
