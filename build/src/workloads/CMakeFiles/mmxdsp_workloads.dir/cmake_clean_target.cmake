file(REMOVE_RECURSE
  "libmmxdsp_workloads.a"
)
