# Empty dependencies file for mmxdsp_workloads.
# This may be replaced when dependencies are built.
