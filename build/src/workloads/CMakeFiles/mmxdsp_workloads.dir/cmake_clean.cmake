file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_workloads.dir/image_data.cc.o"
  "CMakeFiles/mmxdsp_workloads.dir/image_data.cc.o.d"
  "CMakeFiles/mmxdsp_workloads.dir/signal_data.cc.o"
  "CMakeFiles/mmxdsp_workloads.dir/signal_data.cc.o.d"
  "libmmxdsp_workloads.a"
  "libmmxdsp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
