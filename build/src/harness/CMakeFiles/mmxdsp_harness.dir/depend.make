# Empty dependencies file for mmxdsp_harness.
# This may be replaced when dependencies are built.
