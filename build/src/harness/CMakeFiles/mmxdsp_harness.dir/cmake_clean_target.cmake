file(REMOVE_RECURSE
  "libmmxdsp_harness.a"
)
