file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_harness.dir/paper_data.cc.o"
  "CMakeFiles/mmxdsp_harness.dir/paper_data.cc.o.d"
  "CMakeFiles/mmxdsp_harness.dir/suite.cc.o"
  "CMakeFiles/mmxdsp_harness.dir/suite.cc.o.d"
  "libmmxdsp_harness.a"
  "libmmxdsp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
