file(REMOVE_RECURSE
  "libmmxdsp_apps.a"
)
