# Empty dependencies file for mmxdsp_apps.
# This may be replaced when dependencies are built.
