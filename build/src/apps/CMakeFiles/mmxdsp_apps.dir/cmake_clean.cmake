file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_apps.dir/g722/g722_app.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/g722/g722_app.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/g722/g722_codec.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/g722/g722_codec.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/image/image_app.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/image/image_app.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/huffman.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/huffman.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_decoder.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_decoder.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_encoder.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_encoder.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_tables.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/jpeg/jpeg_tables.cc.o.d"
  "CMakeFiles/mmxdsp_apps.dir/radar/radar_app.cc.o"
  "CMakeFiles/mmxdsp_apps.dir/radar/radar_app.cc.o.d"
  "libmmxdsp_apps.a"
  "libmmxdsp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
