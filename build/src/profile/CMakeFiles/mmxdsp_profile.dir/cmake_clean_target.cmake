file(REMOVE_RECURSE
  "libmmxdsp_profile.a"
)
