# Empty compiler generated dependencies file for mmxdsp_profile.
# This may be replaced when dependencies are built.
