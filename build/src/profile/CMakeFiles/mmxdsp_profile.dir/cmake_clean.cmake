file(REMOVE_RECURSE
  "CMakeFiles/mmxdsp_profile.dir/trace_dump.cc.o"
  "CMakeFiles/mmxdsp_profile.dir/trace_dump.cc.o.d"
  "CMakeFiles/mmxdsp_profile.dir/vprof.cc.o"
  "CMakeFiles/mmxdsp_profile.dir/vprof.cc.o.d"
  "libmmxdsp_profile.a"
  "libmmxdsp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmxdsp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
