# Empty dependencies file for micro_pentium_model.
# This may be replaced when dependencies are built.
