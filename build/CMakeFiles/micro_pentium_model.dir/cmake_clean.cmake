file(REMOVE_RECURSE
  "CMakeFiles/micro_pentium_model.dir/bench/micro_pentium_model.cpp.o"
  "CMakeFiles/micro_pentium_model.dir/bench/micro_pentium_model.cpp.o.d"
  "bench/micro_pentium_model"
  "bench/micro_pentium_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pentium_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
