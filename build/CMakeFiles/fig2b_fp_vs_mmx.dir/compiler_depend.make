# Empty compiler generated dependencies file for fig2b_fp_vs_mmx.
# This may be replaced when dependencies are built.
