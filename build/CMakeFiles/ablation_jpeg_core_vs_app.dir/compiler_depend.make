# Empty compiler generated dependencies file for ablation_jpeg_core_vs_app.
# This may be replaced when dependencies are built.
