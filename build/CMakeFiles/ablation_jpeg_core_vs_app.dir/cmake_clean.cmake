file(REMOVE_RECURSE
  "CMakeFiles/ablation_jpeg_core_vs_app.dir/bench/ablation_jpeg_core_vs_app.cpp.o"
  "CMakeFiles/ablation_jpeg_core_vs_app.dir/bench/ablation_jpeg_core_vs_app.cpp.o.d"
  "bench/ablation_jpeg_core_vs_app"
  "bench/ablation_jpeg_core_vs_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jpeg_core_vs_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
