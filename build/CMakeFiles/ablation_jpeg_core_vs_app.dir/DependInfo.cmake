
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_jpeg_core_vs_app.cpp" "CMakeFiles/ablation_jpeg_core_vs_app.dir/bench/ablation_jpeg_core_vs_app.cpp.o" "gcc" "CMakeFiles/ablation_jpeg_core_vs_app.dir/bench/ablation_jpeg_core_vs_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mmxdsp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/nsp/CMakeFiles/mmxdsp_nsp.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mmxdsp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mmxdsp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mmxdsp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/mmxdsp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mmxdsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mmx/CMakeFiles/mmxdsp_mmx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmxdsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mmxdsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mmxdsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mmxdsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
