file(REMOVE_RECURSE
  "CMakeFiles/fig2a_c_vs_mmx.dir/bench/fig2a_c_vs_mmx.cpp.o"
  "CMakeFiles/fig2a_c_vs_mmx.dir/bench/fig2a_c_vs_mmx.cpp.o.d"
  "bench/fig2a_c_vs_mmx"
  "bench/fig2a_c_vs_mmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_c_vs_mmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
