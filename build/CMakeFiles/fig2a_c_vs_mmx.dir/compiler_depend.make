# Empty compiler generated dependencies file for fig2a_c_vs_mmx.
# This may be replaced when dependencies are built.
