# Empty dependencies file for fig1b_instr_ratios.
# This may be replaced when dependencies are built.
