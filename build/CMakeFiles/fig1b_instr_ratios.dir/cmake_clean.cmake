file(REMOVE_RECURSE
  "CMakeFiles/fig1b_instr_ratios.dir/bench/fig1b_instr_ratios.cpp.o"
  "CMakeFiles/fig1b_instr_ratios.dir/bench/fig1b_instr_ratios.cpp.o.d"
  "bench/fig1b_instr_ratios"
  "bench/fig1b_instr_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_instr_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
