file(REMOVE_RECURSE
  "CMakeFiles/fig1a_mmx_mix.dir/bench/fig1a_mmx_mix.cpp.o"
  "CMakeFiles/fig1a_mmx_mix.dir/bench/fig1a_mmx_mix.cpp.o.d"
  "bench/fig1a_mmx_mix"
  "bench/fig1a_mmx_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_mmx_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
