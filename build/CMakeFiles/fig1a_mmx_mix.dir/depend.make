# Empty dependencies file for fig1a_mmx_mix.
# This may be replaced when dependencies are built.
