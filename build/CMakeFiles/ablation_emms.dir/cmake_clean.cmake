file(REMOVE_RECURSE
  "CMakeFiles/ablation_emms.dir/bench/ablation_emms.cpp.o"
  "CMakeFiles/ablation_emms.dir/bench/ablation_emms.cpp.o.d"
  "bench/ablation_emms"
  "bench/ablation_emms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
