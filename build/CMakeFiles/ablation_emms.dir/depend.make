# Empty dependencies file for ablation_emms.
# This may be replaced when dependencies are built.
