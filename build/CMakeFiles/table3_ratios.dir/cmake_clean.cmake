file(REMOVE_RECURSE
  "CMakeFiles/table3_ratios.dir/bench/table3_ratios.cpp.o"
  "CMakeFiles/table3_ratios.dir/bench/table3_ratios.cpp.o.d"
  "bench/table3_ratios"
  "bench/table3_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
