# Empty compiler generated dependencies file for table3_ratios.
# This may be replaced when dependencies are built.
