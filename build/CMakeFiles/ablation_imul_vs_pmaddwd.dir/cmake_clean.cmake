file(REMOVE_RECURSE
  "CMakeFiles/ablation_imul_vs_pmaddwd.dir/bench/ablation_imul_vs_pmaddwd.cpp.o"
  "CMakeFiles/ablation_imul_vs_pmaddwd.dir/bench/ablation_imul_vs_pmaddwd.cpp.o.d"
  "bench/ablation_imul_vs_pmaddwd"
  "bench/ablation_imul_vs_pmaddwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imul_vs_pmaddwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
