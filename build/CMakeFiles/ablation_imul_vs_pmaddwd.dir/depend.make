# Empty dependencies file for ablation_imul_vs_pmaddwd.
# This may be replaced when dependencies are built.
