file(REMOVE_RECURSE
  "CMakeFiles/ablation_fft_library.dir/bench/ablation_fft_library.cpp.o"
  "CMakeFiles/ablation_fft_library.dir/bench/ablation_fft_library.cpp.o.d"
  "bench/ablation_fft_library"
  "bench/ablation_fft_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fft_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
