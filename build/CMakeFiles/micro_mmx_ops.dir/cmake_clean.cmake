file(REMOVE_RECURSE
  "CMakeFiles/micro_mmx_ops.dir/bench/micro_mmx_ops.cpp.o"
  "CMakeFiles/micro_mmx_ops.dir/bench/micro_mmx_ops.cpp.o.d"
  "bench/micro_mmx_ops"
  "bench/micro_mmx_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mmx_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
