file(REMOVE_RECURSE
  "CMakeFiles/ablation_g722_blocking.dir/bench/ablation_g722_blocking.cpp.o"
  "CMakeFiles/ablation_g722_blocking.dir/bench/ablation_g722_blocking.cpp.o.d"
  "bench/ablation_g722_blocking"
  "bench/ablation_g722_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_g722_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
