# Empty dependencies file for ext_motion_estimation.
# This may be replaced when dependencies are built.
