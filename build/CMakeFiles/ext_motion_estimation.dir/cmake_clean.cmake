file(REMOVE_RECURSE
  "CMakeFiles/ext_motion_estimation.dir/bench/ext_motion_estimation.cpp.o"
  "CMakeFiles/ext_motion_estimation.dir/bench/ext_motion_estimation.cpp.o.d"
  "bench/ext_motion_estimation"
  "bench/ext_motion_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_motion_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
